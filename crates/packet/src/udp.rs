//! UDP datagrams.
//!
//! UDP traffic takes no part in the Split-Detect TCP machinery, but the
//! traces contain it (DNS-like chatter), the conventional IPS still scans
//! its payloads per-packet, and IP-fragmented UDP is one of the classic
//! Ptacek–Newsham carriers.

use crate::checksum;
use crate::error::{Error, Result};
use std::net::Ipv4Addr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A view over a buffer holding a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, checking the fixed header and the length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let dg = Self { buffer };
        let l = dg.len_field() as usize;
        if l < HEADER_LEN || l > dg.buffer.as_ref().len() {
            return Err(Error::BadLength);
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Stored checksum (0 means "no checksum" in IPv4).
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field() as usize]
    }

    /// Verify the checksum; a zero stored checksum is accepted (IPv4 rule).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let seg = &self.buffer.as_ref()[..self.len_field() as usize];
        checksum::verify_transport(src, dst, 17, seg)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len_field(&mut self, l: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&l.to_be_bytes());
    }

    /// Compute and store the checksum (using 0xffff if it computes to 0, per
    /// RFC 768).
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[6..8].copy_from_slice(&[0, 0]);
        let len = self.len_field() as usize;
        let c = checksum::transport_checksum(src, dst, 17, &self.buffer.as_ref()[..len]);
        let c = if c == 0 { 0xffff } else { c };
        self.buffer.as_mut()[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len_field() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_src_port(5353);
        d.set_dst_port(53);
        d.set_len_field((HEADER_LEN + payload.len()) as u16);
        d.payload_mut().copy_from_slice(payload);
        d.fill_checksum(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = build(b"query");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.payload(), b"query");
        assert!(d.verify_checksum(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)));
        assert!(!d.verify_checksum(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = build(b"x");
        buf[6..8].copy_from_slice(&[0, 0]);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = build(b"abc");
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // shorter than header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // longer than buffer
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn length_field_bounds_payload() {
        // Trailing padding beyond len_field is not payload.
        let mut buf = build(b"abcd");
        buf.extend_from_slice(&[0xee; 4]);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.payload(), b"abcd");
    }
}
