//! IPv4 fragmentation of complete packets.
//!
//! Used two ways in this repository: the evasion generator fragments attack
//! packets (including into deliberately tiny and overlapping fragments —
//! the overlapping variants are produced by the generator on top of the
//! honest fragmentation here), and round-trip tests pair this with
//! `sd-reassembly`'s defragmenter.

use crate::error::{Error, Result};
use crate::ipv4::{Ipv4Packet, MIN_HEADER_LEN};

/// Split a complete, unfragmented IPv4 packet into fragments whose payloads
/// hold at most `max_frag_payload` bytes.
///
/// `max_frag_payload` is rounded *down* to a multiple of 8 (fragment offsets
/// are in 8-byte units); it must be ≥ 8. Each output fragment carries a
/// copy of the original 20-byte header with offset/MF/length rewritten and
/// the checksum refilled. IP options are not carried (the builder never
/// emits them).
///
/// Returns an error if the input does not parse, is already a fragment, has
/// DF set, or `max_frag_payload < 8`. A packet that already fits yields a
/// single "fragment" identical to the input.
pub fn fragment_ipv4(packet: &[u8], max_frag_payload: usize) -> Result<Vec<Vec<u8>>> {
    let unit = max_frag_payload & !7;
    if unit == 0 {
        return Err(Error::Malformed);
    }
    let ip = Ipv4Packet::new_checked(packet)?;
    if ip.is_fragment() || ip.dont_frag() {
        return Err(Error::Malformed);
    }
    let header_len = ip.header_len();
    if header_len != MIN_HEADER_LEN {
        // Options would need per-fragment copy rules (RFC 791 class bit);
        // nothing in this repo emits them.
        return Err(Error::Malformed);
    }
    let payload = ip.payload();
    if payload.len() <= unit {
        return Ok(vec![packet[..ip.total_len() as usize].to_vec()]);
    }

    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let chunk = (payload.len() - offset).min(unit);
        let more = offset + chunk < payload.len();
        let mut frag = Vec::with_capacity(MIN_HEADER_LEN + chunk);
        frag.extend_from_slice(&packet[..MIN_HEADER_LEN]);
        frag.extend_from_slice(&payload[offset..offset + chunk]);
        {
            let mut v = Ipv4Packet::new_unchecked(&mut frag[..]);
            v.set_total_len((MIN_HEADER_LEN + chunk) as u16);
            v.set_frag_fields(false, more, offset as u16);
            v.fill_checksum();
        }
        out.push(frag);
        offset += chunk;
    }
    Ok(out)
}

/// Compute the fragment coverage intervals `(offset, len, more_frags)` of a
/// list of fragments — used by tests and by the defragmenter's diagnostics.
pub fn coverage(fragments: &[Vec<u8>]) -> Result<Vec<(u16, usize, bool)>> {
    fragments
        .iter()
        .map(|f| {
            let ip = Ipv4Packet::new_checked(&f[..])?;
            Ok((ip.frag_offset(), ip.payload().len(), ip.more_frags()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ip_of_frame, TcpPacketSpec};

    fn tcp_ip_packet(payload_len: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let frame = TcpPacketSpec::new("10.0.0.1:1000", "10.0.0.2:80")
            .dont_frag(false)
            .payload(&payload)
            .build();
        ip_of_frame(&frame).to_vec()
    }

    #[test]
    fn splits_and_covers_everything() {
        let pkt = tcp_ip_packet(100); // 20 TCP header + 100 payload = 120 IP payload
        let frags = fragment_ipv4(&pkt, 48).unwrap();
        let cov = coverage(&frags).unwrap();
        // Offsets must tile [0, 120) without gaps.
        let mut expected_offset = 0u16;
        for (i, &(off, len, more)) in cov.iter().enumerate() {
            assert_eq!(off, expected_offset);
            assert_eq!(more, i + 1 < cov.len());
            expected_offset += len as u16;
        }
        assert_eq!(expected_offset, 120);
        // Every fragment except the last has an 8-byte-aligned payload size.
        for &(_, len, more) in &cov[..cov.len() - 1] {
            assert_eq!(len % 8, 0);
            assert!(more);
        }
        // Each fragment parses and verifies.
        for f in &frags {
            let ip = Ipv4Packet::new_checked(&f[..]).unwrap();
            assert!(ip.verify_checksum());
            assert!(ip.is_fragment());
        }
    }

    #[test]
    fn reassembled_bytes_match_original() {
        let pkt = tcp_ip_packet(333);
        let orig_payload = Ipv4Packet::new_checked(&pkt[..])
            .unwrap()
            .payload()
            .to_vec();
        let frags = fragment_ipv4(&pkt, 64).unwrap();
        let mut rebuilt = vec![0u8; orig_payload.len()];
        for f in &frags {
            let ip = Ipv4Packet::new_checked(&f[..]).unwrap();
            let off = ip.frag_offset() as usize;
            rebuilt[off..off + ip.payload().len()].copy_from_slice(ip.payload());
        }
        assert_eq!(rebuilt, orig_payload);
    }

    #[test]
    fn small_packet_passes_through() {
        let pkt = tcp_ip_packet(16);
        let frags = fragment_ipv4(&pkt, 1480).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], pkt);
        assert!(!Ipv4Packet::new_checked(&frags[0][..])
            .unwrap()
            .is_fragment());
    }

    #[test]
    fn tiny_unit_allowed_down_to_8() {
        let pkt = tcp_ip_packet(64);
        let frags = fragment_ipv4(&pkt, 8).unwrap();
        // 84 bytes of IP payload in 8-byte chunks: ceil(84/8) = 11 fragments.
        assert_eq!(frags.len(), 11);
    }

    #[test]
    fn rejects_df_and_tiny_unit() {
        let frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .payload(&[0u8; 64])
            .build(); // DF set by default
        let pkt = ip_of_frame(&frame);
        assert_eq!(fragment_ipv4(pkt, 32).unwrap_err(), Error::Malformed);
        let pkt2 = tcp_ip_packet(64);
        assert_eq!(fragment_ipv4(&pkt2, 7).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_refragmenting_a_fragment() {
        let pkt = tcp_ip_packet(100);
        let frags = fragment_ipv4(&pkt, 48).unwrap();
        assert_eq!(fragment_ipv4(&frags[0], 16).unwrap_err(), Error::Malformed);
    }
}
