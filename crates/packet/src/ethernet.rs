//! Ethernet II frames.
//!
//! Only untagged Ethernet II is supported (no 802.1Q, no 802.3 LLC): the
//! paper's data path sits behind a line card that has already stripped
//! encapsulations, and the traces we synthesize carry plain IPv4 frames.

use crate::error::{Error, Result};
use core::fmt;

/// Length of the Ethernet II header: two addresses plus the EtherType.
pub const HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EtherAddr(pub [u8; 6]);

impl EtherAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EtherAddr = EtherAddr([0xff; 6]);

    /// True if the least significant bit of the first octet is set
    /// (multicast, which includes broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for `ff:ff:ff:ff:ff:ff`.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if all six octets are zero (unset address).
    pub fn is_unspecified(&self) -> bool {
        self.0 == [0; 6]
    }
}

impl fmt::Display for EtherAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// The EtherType field values this crate distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806` (parsed but not interpreted further).
    Arp,
    /// IPv6, `0x86dd` (parsed but not interpreted further).
    Ipv6,
    /// Any other value.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

/// A view over a buffer holding an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wrap a buffer, checking it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> EtherAddr {
        let b = self.buffer.as_ref();
        EtherAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> EtherAddr {
        let b = self.buffer.as_ref();
        EtherAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The frame payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: EtherAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: EtherAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType.
    pub fn set_ethertype(&mut self, t: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(t).to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Owned representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Source address.
    pub src: EtherAddr,
    /// Destination address.
    pub dst: EtherAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parse the header from a checked frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Self {
        EthernetRepr {
            src: frame.src_addr(),
            dst: frame.dst_addr(),
            ethertype: frame.ethertype(),
        }
    }

    /// Write the header into a frame view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) {
        frame.set_src_addr(self.src);
        frame.set_dst_addr(self.dst);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        EthernetRepr {
            src: EtherAddr([2, 0, 0, 0, 0, 1]),
            dst: EtherAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut f);
        f.payload_mut().copy_from_slice(b"abcd");
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.src_addr(), EtherAddr([2, 0, 0, 0, 0, 1]));
        assert_eq!(f.dst_addr(), EtherAddr([2, 0, 0, 0, 0, 2]));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), b"abcd");
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            Error::Truncated
        );
        assert!(EthernetFrame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(u16::from(EtherType::Arp), 0x0806);
        assert_eq!(u16::from(EtherType::Other(0xbeef)), 0xbeef);
    }

    #[test]
    fn addr_classification() {
        assert!(EtherAddr::BROADCAST.is_broadcast());
        assert!(EtherAddr::BROADCAST.is_multicast());
        assert!(EtherAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!EtherAddr([2, 0, 0, 0, 0, 1]).is_multicast());
        assert!(EtherAddr::default().is_unspecified());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            EtherAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
