//! Counting Bloom filter over flow keys.
//!
//! The ablation study evaluates replacing the exact flow table's
//! small-segment counter with a counting Bloom filter: ~4 bits per cell, no
//! keys stored at all, at the cost of false positives (benign flows sharing
//! cells with a chatty flow get diverted early). Diversion false positives
//! are safe — the slow path is sound — so the trade is purely a slow-path
//! load question, which experiment E3's Bloom variant quantifies.

use crate::hash::{hash_key_seeded, random_seed};
use crate::key::FlowKey;

/// A counting Bloom filter with 8-bit saturating cells.
///
/// Cell indices derive from a per-instance base seed (random by default,
/// [`CountingBloom::with_seed`] to pin one), so an adversary cannot
/// precompute flow keys that all land in — and saturate — the same cells.
#[derive(Debug, Clone)]
pub struct CountingBloom {
    cells: Vec<u8>,
    hashes: u32,
    seed: u64,
    /// Cells currently non-zero, maintained incrementally so
    /// [`fill_ratio`](Self::fill_ratio) really is the cheap load signal it
    /// claims to be (it used to scan every cell).
    nonzero: usize,
}

impl CountingBloom {
    /// Create a filter with `cells` counters (rounded up to a power of two)
    /// and `hashes` hash functions, keyed with a process-random seed.
    ///
    /// # Panics
    /// Panics if `hashes` is 0.
    pub fn new(cells: usize, hashes: u32) -> Self {
        Self::with_seed(cells, hashes, random_seed())
    }

    /// [`new`](Self::new) with a pinned base seed, for bit-reproducible
    /// runs.
    ///
    /// # Panics
    /// Panics if `hashes` is 0.
    pub fn with_seed(cells: usize, hashes: u32, seed: u64) -> Self {
        assert!(hashes > 0, "need at least one hash function");
        let n = cells.max(64).next_power_of_two();
        CountingBloom {
            cells: vec![0; n],
            hashes,
            seed,
            nonzero: 0,
        }
    }

    /// The base seed the per-hash index functions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of counter cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Memory footprint in bytes (one byte per cell).
    pub fn memory_bytes(&self) -> usize {
        self.cells.len()
    }

    fn index(&self, hash_fn: u64, key: &FlowKey) -> usize {
        hash_key_seeded(self.seed ^ hash_fn, key) as usize & (self.cells.len() - 1)
    }

    /// Increment the key's cells (saturating at 255). Returns the new
    /// estimated count.
    pub fn increment(&mut self, key: &FlowKey) -> u8 {
        let mut min = u8::MAX;
        for hash_fn in 0..self.hashes as u64 {
            let idx = self.index(hash_fn, key);
            if self.cells[idx] == 0 {
                self.nonzero += 1;
            }
            self.cells[idx] = self.cells[idx].saturating_add(1);
            min = min.min(self.cells[idx]);
        }
        min
    }

    /// Decrement the key's cells (saturating at 0); used when a flow
    /// terminates cleanly and its budget should be returned.
    pub fn decrement(&mut self, key: &FlowKey) {
        for hash_fn in 0..self.hashes as u64 {
            let idx = self.index(hash_fn, key);
            if self.cells[idx] == 1 {
                self.nonzero -= 1;
            }
            self.cells[idx] = self.cells[idx].saturating_sub(1);
        }
    }

    /// Estimated count for the key: the minimum over its cells. Never
    /// underestimates (before saturation); may overestimate on collisions.
    pub fn estimate(&self, key: &FlowKey) -> u8 {
        (0..self.hashes as u64)
            .map(|hash_fn| self.cells[self.index(hash_fn, key)])
            .min()
            .unwrap_or(0)
    }

    /// Reset every cell to zero.
    pub fn clear(&mut self) {
        self.cells.fill(0);
        self.nonzero = 0;
    }

    /// Age the filter by halving every cell — the standard fix for
    /// saturating counters that never see decrements (flows end without
    /// telling a keyless filter). Called periodically, it bounds stale
    /// counts at twice their steady-state value while preserving the
    /// one-sided-error property between calls.
    pub fn decay(&mut self) {
        for c in &mut self.cells {
            if *c == 1 {
                self.nonzero -= 1;
            }
            *c >>= 1;
        }
    }

    /// Fraction of cells that are non-zero; a cheap O(1) load signal used
    /// to decide when to age the filter (maintained incrementally — no
    /// cell scan).
    pub fn fill_ratio(&self) -> f64 {
        self.nonzero as f64 / self.cells.len() as f64
    }

    /// [`fill_ratio`](Self::fill_ratio) recomputed by scanning every cell:
    /// the O(cells) reference the tests cross-check the incremental
    /// counter against. Not for hot paths.
    pub fn scan_fill_ratio(&self) -> f64 {
        let nonzero = self.cells.iter().filter(|&&c| c > 0).count();
        nonzero as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> FlowKey {
        let (k, _) = FlowKey::from_endpoints(
            6,
            (Ipv4Addr::from(n), 1234),
            (Ipv4Addr::from(0x0a00_0001u32), 80),
        );
        k
    }

    #[test]
    fn estimate_tracks_increments() {
        let mut b = CountingBloom::new(1024, 4);
        let k = key(1);
        assert_eq!(b.estimate(&k), 0);
        for i in 1..=5 {
            assert_eq!(b.increment(&k), i);
        }
        assert_eq!(b.estimate(&k), 5);
    }

    #[test]
    fn never_underestimates_without_saturation() {
        let mut b = CountingBloom::new(4096, 3);
        for n in 0..200 {
            for _ in 0..(n % 7) {
                b.increment(&key(n));
            }
        }
        for n in 0..200 {
            assert!(
                b.estimate(&key(n)) >= (n % 7) as u8,
                "underestimated key {n}"
            );
        }
    }

    #[test]
    fn decrement_returns_budget() {
        let mut b = CountingBloom::new(1024, 4);
        let k = key(2);
        b.increment(&k);
        b.increment(&k);
        b.decrement(&k);
        assert_eq!(b.estimate(&k), 1);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut b = CountingBloom::new(64, 1);
        let k = key(3);
        for _ in 0..300 {
            b.increment(&k);
        }
        assert_eq!(b.estimate(&k), 255);
        b.decrement(&k);
        assert_eq!(b.estimate(&k), 254);
        // Under-decrement at zero also saturates.
        b.clear();
        b.decrement(&k);
        assert_eq!(b.estimate(&k), 0);
    }

    #[test]
    fn clear_and_fill_ratio() {
        let mut b = CountingBloom::new(256, 4);
        assert_eq!(b.fill_ratio(), 0.0);
        for n in 0..20 {
            b.increment(&key(n));
        }
        assert!(b.fill_ratio() > 0.0);
        b.clear();
        assert_eq!(b.fill_ratio(), 0.0);
    }

    #[test]
    fn decay_halves_counts() {
        let mut b = CountingBloom::new(256, 2);
        let k = key(5);
        for _ in 0..9 {
            b.increment(&k);
        }
        b.decay();
        assert_eq!(b.estimate(&k), 4);
        b.decay();
        assert_eq!(b.estimate(&k), 2);
        // Decay drains idle filters to empty.
        b.decay();
        b.decay();
        assert_eq!(b.estimate(&k), 0);
    }

    #[test]
    fn memory_is_cells() {
        let b = CountingBloom::new(1000, 4);
        assert_eq!(b.cells(), 1024);
        assert_eq!(b.memory_bytes(), 1024);
        assert_eq!(b.hashes(), 4);
    }

    #[test]
    fn pinned_seed_reproducible_and_default_random() {
        let run = |mut b: CountingBloom| {
            for n in 0..300 {
                b.increment(&key(n));
            }
            (b.estimate(&key(7)), b.fill_ratio())
        };
        let a = run(CountingBloom::with_seed(256, 3, 99));
        let b = run(CountingBloom::with_seed(256, 3, 99));
        assert_eq!(a, b, "same seed, same outcome");
        let x = CountingBloom::new(256, 3);
        let y = CountingBloom::new(256, 3);
        assert_ne!(x.seed(), y.seed(), "default seeds are per-instance");
    }

    #[test]
    fn fill_ratio_matches_cell_scan_through_all_transitions() {
        // The incremental nonzero counter against the scan it replaced,
        // across increment, decrement, decay, saturation and clear.
        let mut b = CountingBloom::with_seed(128, 3, 5);
        for n in 0..400u32 {
            b.increment(&key(n % 90));
            if n % 3 == 0 {
                b.decrement(&key((n / 2) % 90));
            }
            if n % 97 == 0 {
                b.decay();
            }
            assert_eq!(
                b.fill_ratio(),
                b.scan_fill_ratio(),
                "incremental counter drifted from scan at op {n}"
            );
        }
        // Saturate one key hard, then drain by decay.
        for _ in 0..600 {
            b.increment(&key(1));
        }
        for _ in 0..9 {
            b.decay();
            assert_eq!(b.fill_ratio(), b.scan_fill_ratio());
        }
        b.clear();
        assert_eq!(b.fill_ratio(), 0.0);
        assert_eq!(b.scan_fill_ratio(), 0.0);
    }
}
