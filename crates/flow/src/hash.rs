//! Hashing for flow keys: seeded FNV-1a plus a process-random seed source.
//!
//! FNV-1a is tiny and has good avalanche behaviour on short keys like a
//! 13-byte flow tuple. The *unseeded* variant is kept for reference and for
//! the pinned test vectors, but every table and Bloom filter now takes a
//! per-instance seed: a public, fixed hash lets an adversary precompute
//! flow keys that collide into one probe window and evict tracked flows
//! (the algorithmic-complexity attack the reassembly-hashing literature
//! warns about). Production draws the seed from [`random_seed`]; the
//! experiments and the differential-fuzz oracle pin one so runs stay
//! bit-reproducible.

use crate::key::FlowKey;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over an arbitrary byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a with a seed, for deriving independent hash functions (the Bloom
/// filter needs `k` of them; seeding by index is the standard trick).
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 tail) so seeds that differ in high bits
    // still decorrelate the low bits used for indexing.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Hash a flow key (direction-independent because the key is canonical).
pub fn hash_key(key: &FlowKey) -> u64 {
    fnv1a(&key.to_bytes())
}

/// Seeded flow-key hash for multi-hash structures.
pub fn hash_key_seeded(seed: u64, key: &FlowKey) -> u64 {
    fnv1a_seeded(seed, &key.to_bytes())
}

/// A process-random 64-bit hash seed (the production default for tables
/// and filters). Built on the standard library's per-instance
/// `RandomState` so it needs no extra dependencies and no `unsafe`; two
/// calls yield independent values.
pub fn random_seed() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    RandomState::new().build_hasher().finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> FlowKey {
        let (k, _) = FlowKey::from_endpoints(
            6,
            (Ipv4Addr::from(n), (n % 60000) as u16),
            (Ipv4Addr::from(n ^ 0xdead_beef), 80),
        );
        k
    }

    #[test]
    fn known_fnv_vectors() {
        // Reference values from the FNV-1a specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn deterministic_across_calls() {
        let k = key(42);
        assert_eq!(hash_key(&k), hash_key(&k));
        assert_eq!(hash_key_seeded(7, &k), hash_key_seeded(7, &k));
    }

    #[test]
    fn seeds_give_distinct_functions() {
        let k = key(42);
        let h: Vec<u64> = (0..8).map(|s| hash_key_seeded(s, &k)).collect();
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i], h[j], "seeds {i} and {j} collided");
            }
        }
    }

    #[test]
    fn random_seeds_are_distinct() {
        let a = random_seed();
        let b = random_seed();
        assert_ne!(a, b, "consecutive random seeds must differ");
    }

    #[test]
    fn low_bits_spread() {
        // Indexing uses `hash % buckets`; make sure sequential keys do not
        // land in a handful of buckets.
        let buckets = 64u64;
        let mut seen = std::collections::HashSet::new();
        for n in 0..256 {
            seen.insert(hash_key(&key(n)) % buckets);
        }
        assert!(seen.len() > 40, "only {} of 64 buckets hit", seen.len());
    }
}
