//! # sd-flow — flow identification and compact per-flow state
//!
//! Split-Detect's entire scalability argument is that fast-path per-flow
//! state is *tiny* (a handful of bytes) and lives in a fixed-size table,
//! while only diverted flows get expensive reassembly state. This crate
//! provides the substrate for both sides of that comparison:
//!
//! * [`key`] — canonical 5-tuple flow keys with direction handling,
//! * [`hash`] — seeded FNV-1a hashing plus a process-random seed source;
//!   production keys every table with a random seed (collision floods
//!   cannot be precomputed), experiments pin one for reproducibility,
//! * [`table`] — a fixed-capacity open-addressing flow table with CLOCK
//!   (second-chance) eviction, allocation-free probing, and byte-accurate
//!   memory accounting,
//! * [`bloom`] — a counting Bloom filter, the alternative fast-path
//!   suspicion-counter backend evaluated in the ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod hash;
pub mod key;
pub mod table;

pub use bloom::CountingBloom;
pub use hash::random_seed;
pub use key::{Direction, FlowKey};
pub use table::FlowTable;
