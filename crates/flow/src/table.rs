//! A fixed-capacity open-addressing flow table with CLOCK eviction.
//!
//! This is the fast path's only per-flow store, so it is built the way a
//! line-rate implementation would be:
//!
//! * **fixed capacity** — memory is provisioned once (the paper sizes for
//!   ~1 M connections); no rehashing, no allocation per packet;
//! * **bounded probing** — linear probing limited to a window of
//!   [`PROBE_WINDOW`] slots, so the worst-case per-packet work is constant;
//! * **CLOCK (second-chance) eviction** — when a window is full, the first
//!   entry whose reference bit is clear is evicted; reference bits are set
//!   on every hit and cleared as the CLOCK hand sweeps. Evicting a live
//!   benign flow is harmless for correctness (its counters restart at zero);
//!   the false-negative risk this creates for *diverted* flows is handled a
//!   layer up, which is why diversion is sticky in `splitdetect`;
//! * **byte-accurate accounting** — [`FlowTable::memory_bytes`] reports the
//!   provisioned footprint the way the paper's state comparison counts it.

use std::mem;

use crate::hash::hash_key;
use crate::key::FlowKey;

/// Probe window: how many consecutive slots a key may occupy. Bounds the
/// per-packet worst case; 16 keeps the false-eviction rate negligible below
/// 90 % occupancy while staying cache-friendly (16 slots × ~24 B ≈ 6 lines).
pub const PROBE_WINDOW: usize = 16;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: FlowKey,
    value: V,
    referenced: bool,
}

/// Outcome of [`FlowTable::get_or_insert_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was already present.
    Found,
    /// The key was inserted into an empty slot.
    Inserted,
    /// The key was inserted by evicting another flow's entry.
    InsertedWithEviction,
}

/// Running counters kept by the table. All monotonic; read for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups performed (get or get_or_insert).
    pub lookups: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// New entries created.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// Fixed-capacity open-addressing hash table keyed by [`FlowKey`].
///
/// ```
/// use sd_flow::{FlowKey, FlowTable};
/// let mut table: FlowTable<u32> = FlowTable::with_capacity(1024);
/// let (key, _) = FlowKey::from_endpoints(
///     6,
///     ("10.0.0.1".parse().unwrap(), 4000),
///     ("10.0.0.2".parse().unwrap(), 80),
/// );
/// let (count, _) = table.get_or_insert_with(&key, || 0u32);
/// *count += 1;
/// assert_eq!(table.peek(&key), Some(&1));
/// assert_eq!(table.memory_bytes(), 1024 * FlowTable::<u32>::slot_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable<V> {
    slots: Vec<Option<Slot<V>>>,
    mask: usize,
    len: usize,
    stats: TableStats,
}

impl<V> FlowTable<V> {
    /// Create a table with at least `capacity` slots (rounded up to a power
    /// of two, minimum [`PROBE_WINDOW`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(PROBE_WINDOW).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        FlowTable {
            slots,
            mask: cap - 1,
            len: 0,
            stats: TableStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Provisioned slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Monotonic counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Provisioned memory footprint in bytes: every slot costs one key, one
    /// value, and one reference bit (rounded to a byte), whether occupied or
    /// not — a fixed-size hardware table is paid for up front, which is how
    /// the paper's state comparison counts it.
    pub fn memory_bytes(&self) -> usize {
        self.capacity() * Self::slot_bytes()
    }

    /// Bytes per slot used by [`memory_bytes`](Self::memory_bytes).
    pub fn slot_bytes() -> usize {
        FlowKey::WIRE_BYTES + mem::size_of::<V>() + 1
    }

    fn window(&self, key: &FlowKey) -> impl Iterator<Item = usize> + '_ {
        let start = hash_key(key) as usize & self.mask;
        let mask = self.mask;
        (0..PROBE_WINDOW).map(move |i| (start + i) & mask)
    }

    /// Look up `key`, setting its reference bit on a hit.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        self.stats.lookups += 1;
        let idxs: Vec<usize> = self.window(key).collect();
        for idx in idxs {
            if let Some(slot) = &mut self.slots[idx] {
                if slot.key == *key {
                    slot.referenced = true;
                    self.stats.hits += 1;
                    return Some(&mut self.slots[idx].as_mut().unwrap().value);
                }
            }
        }
        None
    }

    /// Look up `key` without touching reference bits or stats (read-only
    /// inspection for tests and reporting).
    pub fn peek(&self, key: &FlowKey) -> Option<&V> {
        self.window(key).find_map(|idx| {
            self.slots[idx]
                .as_ref()
                .filter(|s| s.key == *key)
                .map(|s| &s.value)
        })
    }

    /// Look up `key`, inserting `make()` if absent. Runs CLOCK eviction
    /// within the probe window when no slot is free.
    pub fn get_or_insert_with(
        &mut self,
        key: &FlowKey,
        make: impl FnOnce() -> V,
    ) -> (&mut V, InsertOutcome) {
        self.stats.lookups += 1;
        let idxs: Vec<usize> = self.window(key).collect();

        let mut free: Option<usize> = None;
        for &idx in &idxs {
            match &mut self.slots[idx] {
                Some(slot) if slot.key == *key => {
                    slot.referenced = true;
                    self.stats.hits += 1;
                    let v = &mut self.slots[idx].as_mut().unwrap().value;
                    return (v, InsertOutcome::Found);
                }
                Some(_) => {}
                None => {
                    if free.is_none() {
                        free = Some(idx);
                    }
                }
            }
        }

        let (idx, outcome) = match free {
            Some(idx) => {
                self.len += 1;
                (idx, InsertOutcome::Inserted)
            }
            None => {
                // CLOCK sweep over the window: clear reference bits until an
                // unreferenced victim is found; if every entry was
                // referenced, the first (now-cleared) slot is the victim.
                let mut victim = idxs[0];
                for &idx in &idxs {
                    let slot = self.slots[idx].as_mut().expect("window is full");
                    if slot.referenced {
                        slot.referenced = false;
                    } else {
                        victim = idx;
                        break;
                    }
                }
                self.stats.evictions += 1;
                (victim, InsertOutcome::InsertedWithEviction)
            }
        };

        self.stats.insertions += 1;
        self.slots[idx] = Some(Slot {
            key: *key,
            value: make(),
            referenced: true,
        });
        let v = &mut self.slots[idx].as_mut().unwrap().value;
        (v, outcome)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &FlowKey) -> Option<V> {
        let idxs: Vec<usize> = self.window(key).collect();
        for idx in idxs {
            if self.slots[idx].as_ref().is_some_and(|s| s.key == *key) {
                self.len -= 1;
                return self.slots[idx].take().map(|s| s.value);
            }
        }
        None
    }

    /// Iterate over live `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (&s.key, &s.value)))
    }

    /// Drop all entries, keeping the provisioned capacity and stats.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> FlowKey {
        let (k, _) = FlowKey::from_endpoints(
            6,
            (Ipv4Addr::from(0x0a00_0000 | n), 10_000),
            (Ipv4Addr::from(0x0a01_0000u32), 80),
        );
        k
    }

    #[test]
    fn insert_then_get() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(1);
        let (v, outcome) = t.get_or_insert_with(&k, || 7);
        assert_eq!((*v, outcome), (7, InsertOutcome::Inserted));
        *v += 1;
        assert_eq!(t.get_mut(&k), Some(&mut 8));
        assert_eq!(t.peek(&k), Some(&8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn second_lookup_is_found() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(2);
        t.get_or_insert_with(&k, || 0);
        let (_, outcome) = t.get_or_insert_with(&k, || 99);
        assert_eq!(outcome, InsertOutcome::Found);
        assert_eq!(t.peek(&k), Some(&0), "make() must not run on a hit");
    }

    #[test]
    fn remove_frees_slot() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(3);
        t.get_or_insert_with(&k, || 5);
        assert_eq!(t.remove(&k), Some(5));
        assert_eq!(t.len(), 0);
        assert!(t.peek(&k).is_none());
        assert_eq!(t.remove(&k), None);
    }

    #[test]
    fn capacity_is_power_of_two_and_bounded_memory() {
        let t: FlowTable<u64> = FlowTable::with_capacity(1000);
        assert_eq!(t.capacity(), 1024);
        assert_eq!(
            t.memory_bytes(),
            1024 * (FlowKey::WIRE_BYTES + std::mem::size_of::<u64>() + 1)
        );
    }

    #[test]
    fn eviction_when_window_overflows() {
        // A tiny table forces all keys into overlapping windows.
        let mut t: FlowTable<u32> = FlowTable::with_capacity(PROBE_WINDOW);
        assert_eq!(t.capacity(), PROBE_WINDOW);
        let mut evicted = 0;
        for n in 0..3 * PROBE_WINDOW as u32 {
            let (_, outcome) = t.get_or_insert_with(&key(n), || n);
            if outcome == InsertOutcome::InsertedWithEviction {
                evicted += 1;
            }
        }
        assert!(evicted > 0, "overflow must evict");
        assert_eq!(t.stats().evictions, evicted);
        assert!(t.len() <= PROBE_WINDOW);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(PROBE_WINDOW);
        // Fill the table.
        for n in 0..PROBE_WINDOW as u32 {
            t.get_or_insert_with(&key(n), || n);
        }
        // Everything has referenced=true from insertion; one overflow insert
        // sweeps bits clear and evicts something.
        t.get_or_insert_with(&key(1000), || 0);
        // Touch one survivor so its bit is set again.
        let survivor = (0..PROBE_WINDOW as u32)
            .map(key)
            .find(|k| t.peek(k).is_some())
            .unwrap();
        t.get_mut(&survivor);
        // The next eviction must not pick the freshly-referenced survivor
        // while unreferenced candidates exist in its window.
        t.get_or_insert_with(&key(2000), || 0);
        assert!(
            t.peek(&survivor).is_some(),
            "CLOCK evicted a just-referenced entry while cold entries existed"
        );
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(9);
        assert!(t.get_mut(&k).is_none());
        t.get_or_insert_with(&k, || 0);
        t.get_mut(&k);
        let s = t.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        for n in 0..10 {
            t.get_or_insert_with(&key(n), || n);
        }
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 64);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn iter_yields_all_live_entries() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(256);
        for n in 0..50 {
            t.get_or_insert_with(&key(n), || n);
        }
        let mut got: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
