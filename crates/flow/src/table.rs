//! A fixed-capacity open-addressing flow table with CLOCK eviction.
//!
//! This is the fast path's only per-flow store, so it is built the way a
//! line-rate implementation would be:
//!
//! * **fixed capacity** — memory is provisioned once (the paper sizes for
//!   ~1 M connections); no rehashing, no allocation per packet — lookups,
//!   inserts and removes iterate the probe window in place and never touch
//!   the heap;
//! * **bounded probing** — linear probing limited to a window of
//!   [`PROBE_WINDOW`] slots, so the worst-case per-packet work is constant;
//! * **seeded hashing** — slot indices come from a per-instance
//!   random-keyed hash ([`crate::hash::random_seed`] by default,
//!   [`FlowTable::with_seed`] to pin one), so an adversary cannot
//!   precompute flow keys that pile into one probe window and evict
//!   tracked flows;
//! * **CLOCK (second-chance) eviction** — when a window is full, the sweep
//!   starts at a rotating hand (not the window head), clears reference
//!   bits until an unreferenced entry is found, and evicts it; reference
//!   bits are set on every hit. Evicting a live benign flow is harmless
//!   for correctness (its counters restart at zero); the false-negative
//!   risk this creates for *diverted* flows is handled a layer up, which
//!   is why diversion is sticky in `splitdetect`;
//! * **byte-accurate accounting** — [`FlowTable::memory_bytes`] reports the
//!   provisioned footprint the way the paper's state comparison counts it.

use std::mem;

use crate::hash::{hash_key_seeded, random_seed};
use crate::key::FlowKey;

/// Probe window: how many consecutive slots a key may occupy. Bounds the
/// per-packet worst case; 16 keeps the false-eviction rate negligible below
/// 90 % occupancy while staying cache-friendly (16 slots × ~24 B ≈ 6 lines).
pub const PROBE_WINDOW: usize = 16;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: FlowKey,
    value: V,
    referenced: bool,
}

/// Outcome of [`FlowTable::get_or_insert_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was already present.
    Found,
    /// The key was inserted into an empty slot.
    Inserted,
    /// The key was inserted by evicting another flow's entry.
    InsertedWithEviction,
}

/// Running counters kept by the table. All monotonic; read for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups performed (get or get_or_insert).
    pub lookups: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// New entries created.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// Fixed-capacity open-addressing hash table keyed by [`FlowKey`].
///
/// ```
/// use sd_flow::{FlowKey, FlowTable};
/// let mut table: FlowTable<u32> = FlowTable::with_capacity(1024);
/// let (key, _) = FlowKey::from_endpoints(
///     6,
///     ("10.0.0.1".parse().unwrap(), 4000),
///     ("10.0.0.2".parse().unwrap(), 80),
/// );
/// let (count, _) = table.get_or_insert_with(&key, || 0u32);
/// *count += 1;
/// assert_eq!(table.peek(&key), Some(&1));
/// assert_eq!(table.memory_bytes(), 1024 * FlowTable::<u32>::slot_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable<V> {
    slots: Vec<Option<Slot<V>>>,
    mask: usize,
    len: usize,
    seed: u64,
    /// CLOCK hand: the in-window position (`0..PROBE_WINDOW`) where the
    /// next eviction sweep starts. Shared across windows so sustained
    /// pressure on one window rotates its victims instead of hammering the
    /// earliest unreferenced slot.
    hand: usize,
    stats: TableStats,
}

impl<V> FlowTable<V> {
    /// Create a table with at least `capacity` slots (rounded up to a power
    /// of two, minimum [`PROBE_WINDOW`]) and a process-random hash seed —
    /// the production default, which keeps precomputed collision floods
    /// from targeting the table.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_seed(capacity, random_seed())
    }

    /// [`with_capacity`](Self::with_capacity) with a pinned hash seed, for
    /// bit-reproducible runs (experiments, the differential-fuzz oracle).
    pub fn with_seed(capacity: usize, seed: u64) -> Self {
        let cap = capacity.max(PROBE_WINDOW).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        FlowTable {
            slots,
            mask: cap - 1,
            len: 0,
            seed,
            hand: 0,
            stats: TableStats::default(),
        }
    }

    /// The hash seed slot indices derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Provisioned slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Monotonic counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Provisioned memory footprint in bytes: every slot costs one key, one
    /// value, and one reference bit (rounded to a byte), whether occupied or
    /// not — a fixed-size hardware table is paid for up front, which is how
    /// the paper's state comparison counts it.
    pub fn memory_bytes(&self) -> usize {
        self.capacity() * Self::slot_bytes()
    }

    /// Bytes per slot used by [`memory_bytes`](Self::memory_bytes).
    pub fn slot_bytes() -> usize {
        FlowKey::WIRE_BYTES + mem::size_of::<V>() + 1
    }

    /// First slot index of the key's probe window.
    fn start(&self, key: &FlowKey) -> usize {
        hash_key_seeded(self.seed, key) as usize & self.mask
    }

    /// Slot index of `key` within its probe window, scanning in place (the
    /// hot paths below must not allocate).
    fn find(&self, key: &FlowKey) -> Option<usize> {
        let start = self.start(key);
        for i in 0..PROBE_WINDOW {
            let idx = (start + i) & self.mask;
            if self.slots[idx].as_ref().is_some_and(|s| s.key == *key) {
                return Some(idx);
            }
        }
        None
    }

    /// Look up `key`, setting its reference bit on a hit.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut V> {
        self.stats.lookups += 1;
        let idx = self.find(key)?;
        self.stats.hits += 1;
        let slot = self.slots[idx].as_mut().expect("find returned occupied");
        slot.referenced = true;
        Some(&mut slot.value)
    }

    /// Look up `key` without touching reference bits or stats (read-only
    /// inspection for tests and reporting).
    pub fn peek(&self, key: &FlowKey) -> Option<&V> {
        self.find(key)
            .map(|idx| &self.slots[idx].as_ref().expect("occupied").value)
    }

    /// Look up `key`, inserting `make()` if absent. Runs CLOCK eviction
    /// within the probe window when no slot is free.
    pub fn get_or_insert_with(
        &mut self,
        key: &FlowKey,
        make: impl FnOnce() -> V,
    ) -> (&mut V, InsertOutcome) {
        self.stats.lookups += 1;
        let start = self.start(key);
        let mask = self.mask;

        let mut free: Option<usize> = None;
        let mut hit: Option<usize> = None;
        for i in 0..PROBE_WINDOW {
            let idx = (start + i) & mask;
            match &self.slots[idx] {
                Some(slot) if slot.key == *key => {
                    hit = Some(idx);
                    break;
                }
                Some(_) => {}
                None => {
                    if free.is_none() {
                        free = Some(idx);
                    }
                }
            }
        }
        if let Some(idx) = hit {
            self.stats.hits += 1;
            let slot = self.slots[idx].as_mut().expect("hit is occupied");
            slot.referenced = true;
            return (&mut slot.value, InsertOutcome::Found);
        }

        let (idx, outcome) = match free {
            Some(idx) => {
                self.len += 1;
                (idx, InsertOutcome::Inserted)
            }
            None => {
                // CLOCK sweep over the window, starting at the rotating
                // hand rather than the window head (a head-anchored sweep
                // hammers the earliest unreferenced slot under sustained
                // pressure): clear reference bits until an unreferenced
                // victim is found; if every entry was referenced, the
                // first (now-cleared) slot swept is the victim. The hand
                // advances past the victim either way.
                let mut victim_pos = self.hand;
                for j in 0..PROBE_WINDOW {
                    let pos = (self.hand + j) % PROBE_WINDOW;
                    let idx = (start + pos) & mask;
                    let slot = self.slots[idx].as_mut().expect("window is full");
                    if slot.referenced {
                        slot.referenced = false;
                    } else {
                        victim_pos = pos;
                        break;
                    }
                }
                self.hand = (victim_pos + 1) % PROBE_WINDOW;
                self.stats.evictions += 1;
                (
                    (start + victim_pos) & mask,
                    InsertOutcome::InsertedWithEviction,
                )
            }
        };

        self.stats.insertions += 1;
        self.slots[idx] = Some(Slot {
            key: *key,
            value: make(),
            referenced: true,
        });
        let v = &mut self.slots[idx].as_mut().unwrap().value;
        (v, outcome)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &FlowKey) -> Option<V> {
        let idx = self.find(key)?;
        self.len -= 1;
        self.slots[idx].take().map(|s| s.value)
    }

    /// Iterate over live `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| (&s.key, &s.value)))
    }

    /// Drop all entries, keeping the provisioned capacity and stats.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u32) -> FlowKey {
        let (k, _) = FlowKey::from_endpoints(
            6,
            (Ipv4Addr::from(0x0a00_0000 | n), 10_000),
            (Ipv4Addr::from(0x0a01_0000u32), 80),
        );
        k
    }

    #[test]
    fn insert_then_get() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(1);
        let (v, outcome) = t.get_or_insert_with(&k, || 7);
        assert_eq!((*v, outcome), (7, InsertOutcome::Inserted));
        *v += 1;
        assert_eq!(t.get_mut(&k), Some(&mut 8));
        assert_eq!(t.peek(&k), Some(&8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn second_lookup_is_found() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(2);
        t.get_or_insert_with(&k, || 0);
        let (_, outcome) = t.get_or_insert_with(&k, || 99);
        assert_eq!(outcome, InsertOutcome::Found);
        assert_eq!(t.peek(&k), Some(&0), "make() must not run on a hit");
    }

    #[test]
    fn remove_frees_slot() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(3);
        t.get_or_insert_with(&k, || 5);
        assert_eq!(t.remove(&k), Some(5));
        assert_eq!(t.len(), 0);
        assert!(t.peek(&k).is_none());
        assert_eq!(t.remove(&k), None);
    }

    #[test]
    fn capacity_is_power_of_two_and_bounded_memory() {
        let t: FlowTable<u64> = FlowTable::with_capacity(1000);
        assert_eq!(t.capacity(), 1024);
        assert_eq!(
            t.memory_bytes(),
            1024 * (FlowKey::WIRE_BYTES + std::mem::size_of::<u64>() + 1)
        );
    }

    #[test]
    fn eviction_when_window_overflows() {
        // A tiny table forces all keys into overlapping windows.
        let mut t: FlowTable<u32> = FlowTable::with_capacity(PROBE_WINDOW);
        assert_eq!(t.capacity(), PROBE_WINDOW);
        let mut evicted = 0;
        for n in 0..3 * PROBE_WINDOW as u32 {
            let (_, outcome) = t.get_or_insert_with(&key(n), || n);
            if outcome == InsertOutcome::InsertedWithEviction {
                evicted += 1;
            }
        }
        assert!(evicted > 0, "overflow must evict");
        assert_eq!(t.stats().evictions, evicted);
        assert!(t.len() <= PROBE_WINDOW);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(PROBE_WINDOW);
        // Fill the table.
        for n in 0..PROBE_WINDOW as u32 {
            t.get_or_insert_with(&key(n), || n);
        }
        // Everything has referenced=true from insertion; one overflow insert
        // sweeps bits clear and evicts something.
        t.get_or_insert_with(&key(1000), || 0);
        // Touch one survivor so its bit is set again.
        let survivor = (0..PROBE_WINDOW as u32)
            .map(key)
            .find(|k| t.peek(k).is_some())
            .unwrap();
        t.get_mut(&survivor);
        // The next eviction must not pick the freshly-referenced survivor
        // while unreferenced candidates exist in its window.
        t.get_or_insert_with(&key(2000), || 0);
        assert!(
            t.peek(&survivor).is_some(),
            "CLOCK evicted a just-referenced entry while cold entries existed"
        );
    }

    /// Brute-force `n` distinct keys whose probe windows all start at slot
    /// `target` of a `cap`-slot table hashed with `seed` — the collision
    /// flood an adversary could precompute against a *fixed* public hash.
    fn colliding_keys(seed: u64, cap: usize, target: usize, n: usize) -> Vec<FlowKey> {
        let mask = cap - 1;
        let mut out = Vec::new();
        let mut c = 0u32;
        while out.len() < n {
            let k = key(c);
            if crate::hash::hash_key_seeded(seed, &k) as usize & mask == target {
                out.push(k);
            }
            c += 1;
        }
        out
    }

    #[test]
    fn clock_hand_rotates_across_evictions() {
        // 16 cold keys fill one probe window; 16 fresh same-window keys
        // then arrive. With a rotating hand every cold entry is evicted
        // exactly once; a head-anchored sweep would ping-pong on the first
        // couple of positions and leave most cold entries untouched.
        let seed = 42u64;
        let keys = colliding_keys(seed, PROBE_WINDOW, 0, 2 * PROBE_WINDOW);
        let (cold, fresh) = keys.split_at(PROBE_WINDOW);
        let mut t: FlowTable<u32> = FlowTable::with_seed(PROBE_WINDOW, seed);
        for k in cold {
            t.get_or_insert_with(k, || 0);
        }
        for k in fresh {
            let (_, outcome) = t.get_or_insert_with(k, || 1);
            assert_eq!(outcome, InsertOutcome::InsertedWithEviction);
        }
        let survivors = cold.iter().filter(|k| t.peek(k).is_some()).count();
        assert_eq!(
            survivors, 0,
            "rotating CLOCK hand must cycle through every cold entry"
        );
        for k in fresh {
            assert!(t.peek(k).is_some(), "every fresh key must be resident");
        }
    }

    #[test]
    fn pinned_seed_is_reproducible_and_default_is_random() {
        let run = |mut t: FlowTable<u32>| {
            for n in 0..200 {
                t.get_or_insert_with(&key(n), || n);
            }
            t.stats()
        };
        let a = run(FlowTable::with_seed(32, 7));
        let b = run(FlowTable::with_seed(32, 7));
        assert_eq!(a, b, "same seed, same ops, same outcome");
        let t1: FlowTable<u32> = FlowTable::with_capacity(32);
        let t2: FlowTable<u32> = FlowTable::with_capacity(32);
        assert_ne!(t1.seed(), t2.seed(), "default seeds are per-instance");
    }

    #[test]
    fn collision_flood_is_confined_to_its_window() {
        // A flood aimed at one window (under a known seed) must not evict
        // flows resident in other windows: probing is window-bounded.
        let seed = 9u64;
        let cap = 1024usize;
        let mut t: FlowTable<u32> = FlowTable::with_seed(cap, seed);
        // A victim flow far from the flood's window.
        let victim = colliding_keys(seed, cap, 500, 1)[0];
        t.get_or_insert_with(&victim, || 7);
        for k in colliding_keys(seed, cap, 0, 3 * PROBE_WINDOW) {
            t.get_or_insert_with(&k, || 0);
        }
        assert!(t.stats().evictions > 0, "the flooded window must overflow");
        assert_eq!(t.peek(&victim), Some(&7), "other windows are untouched");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        let k = key(9);
        assert!(t.get_mut(&k).is_none());
        t.get_or_insert_with(&k, || 0);
        t.get_mut(&k);
        let s = t.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(64);
        for n in 0..10 {
            t.get_or_insert_with(&key(n), || n);
        }
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 64);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn iter_yields_all_live_entries() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(256);
        for n in 0..50 {
            t.get_or_insert_with(&key(n), || n);
        }
        let mut got: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
