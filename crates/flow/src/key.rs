//! Canonical 5-tuple flow keys.
//!
//! Both directions of a TCP connection must map to the same fast-path state
//! entry (the paper's per-flow counters are per *connection*), so the key is
//! canonicalized: the numerically smaller (address, port) endpoint is always
//! stored first and the original orientation is reported separately as a
//! [`Direction`].

use std::fmt;
use std::net::Ipv4Addr;

use sd_packet::ipv4::Protocol;
use sd_packet::parse::{Parsed, Transport};

/// Which way a packet travels relative to the canonical key orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The packet's source is the canonical first endpoint.
    Forward,
    /// The packet's source is the canonical second endpoint.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A canonical transport-layer flow key: `{proto, (ipA, portA), (ipB, portB)}`
/// with `(ipA, portA) <= (ipB, portB)` in lexicographic order.
///
/// 13 bytes of real information (2×4 address + 2×2 port + 1 proto); stored
/// padded for alignment. This is the unit the paper's "state for 1 million
/// connections" is counted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// First canonical endpoint address.
    pub addr_a: Ipv4Addr,
    /// Second canonical endpoint address.
    pub addr_b: Ipv4Addr,
    /// First canonical endpoint port.
    pub port_a: u16,
    /// Second canonical endpoint port.
    pub port_b: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowKey {
    /// Wire-information size of a key in bytes: two IPv4 addresses, two
    /// ports, one protocol octet. Used by the state-accounting experiments.
    pub const WIRE_BYTES: usize = 13;

    /// Build a canonical key from the packet's source and destination
    /// endpoints, returning the orientation of this packet.
    pub fn from_endpoints(
        proto: u8,
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
    ) -> (FlowKey, Direction) {
        if src <= dst {
            (
                FlowKey {
                    addr_a: src.0,
                    addr_b: dst.0,
                    port_a: src.1,
                    port_b: dst.1,
                    proto,
                },
                Direction::Forward,
            )
        } else {
            (
                FlowKey {
                    addr_a: dst.0,
                    addr_b: src.0,
                    port_a: dst.1,
                    port_b: src.1,
                    proto,
                },
                Direction::Backward,
            )
        }
    }

    /// Extract a key from a parsed frame.
    ///
    /// Fragments key on the IP pair alone (ports unavailable past the first
    /// fragment — exactly the ambiguity evasions exploit, so the fast path
    /// never trusts fragment ports). Non-IP frames have no flow key.
    pub fn from_parsed(parsed: &Parsed<'_>) -> Option<(FlowKey, Direction)> {
        let ip = parsed.ipv4.as_ref()?;
        let (src_port, dst_port) = match &parsed.transport {
            Transport::Tcp(t) => (t.repr.src_port, t.repr.dst_port),
            Transport::Udp(u) => (u.src_port, u.dst_port),
            Transport::Fragment(_) | Transport::Other(_) => (0, 0),
            Transport::NonIp => return None,
        };
        let proto = match ip.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(p) => p,
        };
        Some(FlowKey::from_endpoints(
            proto,
            (ip.src, src_port),
            (ip.dst, dst_port),
        ))
    }

    /// Extract a fragmentation-stable *dispatch* key: IP pair and protocol
    /// only, ports zeroed.
    ///
    /// A flow-hash dispatcher must not hash ports: non-first fragments
    /// carry none, so a 5-tuple hash would route a connection's fragments
    /// to a different shard than its stream segments and the sharded
    /// engine would no longer see whole flows. Hashing the IP pair keeps
    /// every fragment of a datagram — and every segment of the connection
    /// it belongs to — on the same shard.
    pub fn from_ip_pair(parsed: &Parsed<'_>) -> Option<FlowKey> {
        let ip = parsed.ipv4.as_ref()?;
        if matches!(parsed.transport, Transport::NonIp) {
            return None;
        }
        let proto = match ip.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(p) => p,
        };
        Some(FlowKey::from_endpoints(proto, (ip.src, 0), (ip.dst, 0)).0)
    }

    /// The endpoints in the orientation given by `dir`: `(source, destination)`.
    pub fn oriented(&self, dir: Direction) -> ((Ipv4Addr, u16), (Ipv4Addr, u16)) {
        let a = (self.addr_a, self.port_a);
        let b = (self.addr_b, self.port_b);
        match dir {
            Direction::Forward => (a, b),
            Direction::Backward => (b, a),
        }
    }

    /// Serialize to the 13-byte canonical encoding (used by hashing and by
    /// the Bloom filter so that both directions hash identically).
    pub fn to_bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.addr_a.octets());
        out[4..8].copy_from_slice(&self.addr_b.octets());
        out[8..10].copy_from_slice(&self.port_a.to_be_bytes());
        out[10..12].copy_from_slice(&self.port_b.to_be_bytes());
        out[12] = self.proto;
        out
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}<->{}:{}/{}",
            self.addr_a, self.port_a, self.addr_b, self.port_b, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::TcpPacketSpec;
    use sd_packet::parse::parse_ethernet;

    fn key(src: &str, sp: u16, dst: &str, dp: u16) -> (FlowKey, Direction) {
        FlowKey::from_endpoints(6, (src.parse().unwrap(), sp), (dst.parse().unwrap(), dp))
    }

    #[test]
    fn both_directions_same_key() {
        let (k1, d1) = key("10.0.0.1", 4000, "10.0.0.2", 80);
        let (k2, d2) = key("10.0.0.2", 80, "10.0.0.1", 4000);
        assert_eq!(k1, k2);
        assert_ne!(d1, d2);
        assert_eq!(d1.flip(), d2);
    }

    #[test]
    fn oriented_recovers_endpoints() {
        let src = ("10.9.8.7".parse().unwrap(), 5555u16);
        let dst = ("10.0.0.2".parse().unwrap(), 80u16);
        let (k, d) = FlowKey::from_endpoints(6, src, dst);
        assert_eq!(k.oriented(d), (src, dst));
        assert_eq!(k.oriented(d.flip()), (dst, src));
    }

    #[test]
    fn port_breaks_tie_on_same_address() {
        let a: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let (k1, d1) = FlowKey::from_endpoints(6, (a, 9), (a, 10));
        let (k2, d2) = FlowKey::from_endpoints(6, (a, 10), (a, 9));
        assert_eq!(k1, k2);
        assert_eq!(d1, Direction::Forward);
        assert_eq!(d2, Direction::Backward);
    }

    #[test]
    fn from_parsed_tcp_frame() {
        let frame = TcpPacketSpec::new("10.0.0.1:4000", "10.0.0.2:80").build();
        let parsed = parse_ethernet(&frame).unwrap();
        let (k, _) = FlowKey::from_parsed(&parsed).unwrap();
        assert_eq!(k.proto, 6);
        assert_eq!(k.port_a, 4000);
        assert_eq!(k.port_b, 80);
    }

    #[test]
    fn non_ip_has_no_key() {
        let mut frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2").build();
        frame[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        let parsed = parse_ethernet(&frame).unwrap();
        assert!(FlowKey::from_parsed(&parsed).is_none());
    }

    #[test]
    fn to_bytes_is_direction_independent() {
        let (k1, _) = key("1.2.3.4", 1, "5.6.7.8", 2);
        let (k2, _) = key("5.6.7.8", 2, "1.2.3.4", 1);
        assert_eq!(k1.to_bytes(), k2.to_bytes());
        assert_eq!(k1.to_bytes().len(), FlowKey::WIRE_BYTES);
    }
}
