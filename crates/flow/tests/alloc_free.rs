//! Zero-allocation regression guard for the flow-state hot paths.
//!
//! `FlowTable::{get_mut, get_or_insert_with, remove}` used to collect the
//! probe window into a `Vec<usize>` on every call — a heap allocation per
//! packet on the fast path. This test wraps the global allocator in a
//! counter and pins that the lookup/insert/evict/remove paths (and the
//! counting-Bloom operations) perform **zero** heap allocations once the
//! structures are built.
//!
//! The counter is **per-thread**: libtest runs the test body on a worker
//! thread while its harness thread stays live (and may allocate for
//! progress/timing bookkeeping at any moment), so a process-global count
//! is flaky by construction. Only allocations made by the measuring
//! thread itself can be the hot path's fault, and only those count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

use sd_flow::table::{FlowTable, PROBE_WINDOW};
use sd_flow::{CountingBloom, FlowKey};

struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// `try_with`: the TLS slot may already be torn down when thread-exit
// destructors allocate; those allocations are outside any measured window.
fn count_one() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

fn key(n: u32) -> FlowKey {
    FlowKey::from_endpoints(
        6,
        (Ipv4Addr::from(0x0a00_0000 | n), 10_000 + (n % 1000) as u16),
        (Ipv4Addr::from(0x0a01_0001u32), 80),
    )
    .0
}

#[test]
fn hot_paths_do_not_allocate() {
    // Build everything (and the key set) before the measured window.
    let mut table: FlowTable<u32> = FlowTable::with_seed(256, 7);
    let mut bloom = CountingBloom::with_seed(1024, 4, 7);
    let keys: Vec<FlowKey> = (0..4096).map(key).collect();
    for k in &keys[..128] {
        table.get_or_insert_with(k, || 1);
    }

    let before = allocations();

    // Hits, misses, overflow inserts (CLOCK eviction), removes, peeks.
    for k in &keys {
        table.get_or_insert_with(k, || 2);
    }
    for k in &keys {
        if let Some(v) = table.get_mut(k) {
            *v = v.wrapping_add(1);
        }
        let _ = table.peek(k);
    }
    for k in &keys[..512] {
        table.remove(k);
    }
    for k in &keys {
        bloom.increment(k);
        let _ = bloom.estimate(k);
        let _ = bloom.fill_ratio();
    }
    for k in &keys[..512] {
        bloom.decrement(k);
    }
    bloom.decay();

    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "flow-state hot paths allocated {delta} time(s); \
         lookups/inserts/evictions/removes must be allocation-free"
    );
    // The structures still work after the measured window.
    assert!(table.stats().evictions > 0, "the sweep exercised eviction");
    assert!(table.len() <= table.capacity());
    const _: () = assert!(PROBE_WINDOW >= 2);
}
