//! Property tests: the flow table against a reference map, the Bloom filter
//! against its one-sided error guarantee, and key canonicalization.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use sd_flow::key::{Direction, FlowKey};
use sd_flow::table::FlowTable;
use sd_flow::CountingBloom;

fn arb_endpoint() -> impl Strategy<Value = (Ipv4Addr, u16)> {
    (any::<u32>(), any::<u16>()).prop_map(|(a, p)| (Ipv4Addr::from(a), p))
}

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (arb_endpoint(), arb_endpoint(), 0u8..=255)
        .prop_map(|(src, dst, proto)| FlowKey::from_endpoints(proto, src, dst).0)
}

proptest! {
    /// Canonicalization: swapping src and dst never changes the key, and
    /// `oriented` inverts it.
    #[test]
    fn key_canonical_and_invertible(src in arb_endpoint(), dst in arb_endpoint(), proto in 0u8..=255) {
        let (k1, d1) = FlowKey::from_endpoints(proto, src, dst);
        let (k2, d2) = FlowKey::from_endpoints(proto, dst, src);
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(k1.to_bytes(), k2.to_bytes());
        if src != dst {
            prop_assert_eq!(d1.flip(), d2);
        }
        prop_assert_eq!(k1.oriented(d1), (src, dst));
        prop_assert_eq!(k2.oriented(d2), (dst, src));
        // Forward means the canonical first endpoint sent the packet.
        if d1 == Direction::Forward {
            prop_assert_eq!((k1.addr_a, k1.port_a), src);
        }
    }

    /// With ample capacity (no evictions possible), the table behaves
    /// exactly like a HashMap under an arbitrary op sequence.
    #[test]
    fn table_matches_reference_map(ops in prop::collection::vec((0u8..3, 0u32..24), 1..300)) {
        let mut table: FlowTable<u64> = FlowTable::with_capacity(4096);
        let mut model: HashMap<FlowKey, u64> = HashMap::new();
        let keys: Vec<FlowKey> = (0..24)
            .map(|n| {
                FlowKey::from_endpoints(
                    6,
                    (Ipv4Addr::from(0x0a00_0000 + n), 1000 + n as u16),
                    (Ipv4Addr::from(0x0a01_0001u32), 80),
                )
                .0
            })
            .collect();

        for (op, kn) in ops {
            let k = keys[kn as usize % keys.len()];
            match op {
                0 => {
                    let (v, _) = table.get_or_insert_with(&k, || 0);
                    *v += 1;
                    *model.entry(k).or_insert(0) += 1;
                }
                1 => {
                    prop_assert_eq!(table.remove(&k), model.remove(&k));
                }
                _ => {
                    prop_assert_eq!(table.peek(&k), model.get(&k));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        if !model.is_empty() {
            prop_assert_eq!(table.stats().evictions, 0, "capacity 4096 must not evict 24 keys");
        }
        for (k, v) in &model {
            prop_assert_eq!(table.peek(k), Some(v));
        }
    }

    /// Bloom estimates never fall below the true count while all cells stay
    /// below saturation.
    #[test]
    fn bloom_one_sided_error(keys in prop::collection::vec(arb_key(), 1..60),
                             counts in prop::collection::vec(1u8..8, 1..60)) {
        let mut bloom = CountingBloom::new(2048, 4);
        let pairs: Vec<(FlowKey, u8)> = keys.into_iter().zip(counts).collect();
        // Deduplicate: identical keys add up, so track true totals.
        let mut truth: HashMap<FlowKey, u32> = HashMap::new();
        for (k, c) in &pairs {
            for _ in 0..*c {
                bloom.increment(k);
            }
            *truth.entry(*k).or_insert(0) += *c as u32;
        }
        for (k, t) in &truth {
            prop_assert!(
                (bloom.estimate(k) as u32) >= (*t).min(255),
                "estimate below true count"
            );
        }
    }

    /// The incremental nonzero-cell counter behind `fill_ratio` agrees
    /// with a full cell scan under arbitrary increment/decrement/decay
    /// sequences (the satellite fix for the O(cells) "cheap load signal").
    #[test]
    fn bloom_fill_ratio_matches_scan(ops in prop::collection::vec((0u8..4, arb_key()), 1..400),
                                     seed in any::<u64>()) {
        let mut bloom = CountingBloom::with_seed(512, 3, seed);
        for (op, k) in ops {
            match op {
                0 | 1 => { bloom.increment(&k); }
                2 => bloom.decrement(&k),
                _ => bloom.decay(),
            }
            prop_assert_eq!(bloom.fill_ratio(), bloom.scan_fill_ratio());
        }
        bloom.clear();
        prop_assert_eq!(bloom.fill_ratio(), 0.0);
    }

    /// Pinned-seed tables are bit-reproducible: identical op sequences on
    /// identical seeds give identical stats and contents.
    #[test]
    fn seeded_table_is_reproducible(ops in prop::collection::vec(any::<u32>(), 1..200),
                                    seed in any::<u64>()) {
        let run = |mut t: FlowTable<u32>| {
            for &s in &ops {
                let k = FlowKey::from_endpoints(
                    6,
                    (Ipv4Addr::from(s), (s % 50000) as u16),
                    (Ipv4Addr::from(0x0a00_0001u32), 80),
                ).0;
                t.get_or_insert_with(&k, || s);
            }
            (t.stats(), t.len())
        };
        let a = run(FlowTable::with_seed(64, seed));
        let b = run(FlowTable::with_seed(64, seed));
        prop_assert_eq!(a, b);
    }

    /// Even under heavy eviction pressure, a table never loses the entry it
    /// just inserted (the insert-then-read guarantee diversion relies on).
    #[test]
    fn table_insert_is_immediately_readable(seeds in prop::collection::vec(any::<u32>(), 1..200)) {
        let mut table: FlowTable<u32> = FlowTable::with_capacity(16);
        for s in seeds {
            let k = FlowKey::from_endpoints(
                6,
                (Ipv4Addr::from(s), (s % 50000) as u16),
                (Ipv4Addr::from(0x0a00_0001u32), 80),
            ).0;
            let (v, _) = table.get_or_insert_with(&k, || s);
            prop_assert_eq!(*v, s);
            prop_assert_eq!(table.peek(&k), Some(&s));
        }
    }
}
