//! Cross-engine property tests: every engine must agree with the naive
//! reference on arbitrary patterns and haystacks, and the streaming matcher
//! must be chunking-invariant.

use proptest::prelude::*;
use sd_match::bmh::Horspool;
use sd_match::shiftor::{ShiftOr, ShiftOrBank};
use sd_match::stream::{StreamMatch, StreamMatcher};
use sd_match::{
    naive, AcDfa, AhoCorasick, BloomSparseNfa, ClassedDfa, PatternSet, PrefilteredDfa, SparseNfa,
};

/// Small alphabet so matches actually happen.
fn small_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..=max_len)
}

fn pattern_set() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(small_bytes(6), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nfa_agrees_with_naive(pats in pattern_set(), hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 4 + b'a'), 0..200)) {
        let set = PatternSet::from_patterns(&pats);
        let nfa = AhoCorasick::new(set.clone());
        let mut got = nfa.find_all(&hay);
        let mut want = naive::find_all(&set, &hay);
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dfa_agrees_with_naive(pats in pattern_set(), hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 4 + b'a'), 0..200)) {
        let set = PatternSet::from_patterns(&pats);
        let dfa = AcDfa::new(set.clone());
        let mut got = dfa.find_all(&hay);
        let mut want = naive::find_all(&set, &hay);
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
        prop_assert_eq!(dfa.is_match(&hay), !dfa.find_all(&hay).is_empty());
    }

    #[test]
    fn horspool_agrees_with_naive(pat in small_bytes(8), hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 3 + b'a'), 0..200)) {
        let h = Horspool::new(&pat);
        let set = PatternSet::from_patterns([&pat]);
        let want: Vec<usize> = naive::find_all(&set, &hay)
            .iter()
            .map(|m| m.start(&set))
            .collect();
        prop_assert_eq!(h.find_all(&hay), want);
    }

    #[test]
    fn shiftor_agrees_with_naive(pat in small_bytes(8), hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 3 + b'a'), 0..200)) {
        let so = ShiftOr::new(&pat);
        let set = PatternSet::from_patterns([&pat]);
        let want: Vec<usize> = naive::find_all(&set, &hay).iter().map(|m| m.end).collect();
        prop_assert_eq!(so.find_ends(&hay), want);
    }

    #[test]
    fn shiftor_bank_agrees_with_naive(
        pats in proptest::collection::vec(small_bytes(5), 1..6),
        hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 3 + b'a'), 0..200),
    ) {
        prop_assume!(pats.iter().map(Vec::len).sum::<usize>() <= 64);
        let bank = ShiftOrBank::new(&pats);
        let set = PatternSet::from_patterns(&pats);
        let mut want: Vec<(usize, usize)> = naive::find_all(&set, &hay)
            .iter()
            .map(|m| (m.end, m.pattern as usize))
            .collect();
        want.sort();
        let mut got = bank.find_all(&hay);
        got.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn streaming_is_chunking_invariant(
        pats in pattern_set(),
        hay in proptest::collection::vec(any::<u8>().prop_map(|b| b % 4 + b'a'), 0..200),
        cuts in proptest::collection::vec(0usize..200, 0..8),
    ) {
        let dfa = AcDfa::new(PatternSet::from_patterns(&pats));
        let mut batch = Vec::new();
        StreamMatcher::new().feed(&dfa, &hay, &mut batch);

        let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (hay.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(hay.len());
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut m = StreamMatcher::new();
        let mut out: Vec<StreamMatch> = Vec::new();
        for w in boundaries.windows(2) {
            m.feed(&dfa, &hay[w[0]..w[1]], &mut out);
        }
        prop_assert_eq!(out, batch);
        prop_assert_eq!(m.offset(), hay.len() as u64);
    }
}

proptest! {
    /// The stride-2 DFA reports exactly the byte DFA's matches on random
    /// patterns and haystacks (the exhaustive small-alphabet check lives in
    /// the unit tests; this covers the full byte alphabet).
    #[test]
    fn stride2_agrees_with_byte_dfa(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..6),
        hay in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        use sd_match::stride2::Stride2Dfa;
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let dfa = AcDfa::new(set);
        let s2 = Stride2Dfa::new(dfa.clone()).expect("small automaton");
        let mut a = dfa.find_all(&hay);
        let mut b = s2.find_all(&hay);
        a.sort_by_key(|m| (m.end, m.pattern));
        b.sort_by_key(|m| (m.end, m.pattern));
        prop_assert_eq!(a, b);
        prop_assert_eq!(dfa.is_match(&hay), s2.is_match(&hay));
    }

    /// The byte-class compressed DFA is transition-for-transition the dense
    /// DFA: same matches, same match-state decisions, on the full byte
    /// alphabet.
    #[test]
    fn classed_agrees_with_naive_and_dense(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let dense = AcDfa::new(set.clone());
        let classed = ClassedDfa::new(set.clone());
        let mut a = naive::find_all(&set, &hay);
        let mut b = classed.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(classed.is_match(&hay), dense.is_match(&hay));
        prop_assert_eq!(classed.find_first(&hay), dense.find_first(&hay));
        prop_assert_eq!(classed.find_first_id(&hay), dense.find_first_id(&hay));
        prop_assert!(classed.class_count() <= 256);
    }

    /// The prefiltered scan reports exactly the dense DFA's matches —
    /// including overlapping ones found mid-walk — on the full byte
    /// alphabet, with haystacks of every length mod 8 (payloads ending
    /// mid-chunk come out of the random length).
    #[test]
    fn prefiltered_agrees_with_naive_and_dense(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let dense = AcDfa::new(set.clone());
        let pre = PrefilteredDfa::new(set.clone());
        let mut a = naive::find_all(&set, &hay);
        let mut b = pre.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(pre.is_match(&hay), dense.is_match(&hay));
        prop_assert_eq!(pre.find_first(&hay), dense.find_first(&hay));
        prop_assert_eq!(pre.find_first_id(&hay), dense.find_first_id(&hay));
    }

    /// Planted occurrences that straddle the 8-byte SWAR chunk boundary:
    /// the pattern is embedded at an arbitrary offset (sweeping all lanes)
    /// in a sparse haystack, so the prefilter must hand over to the DFA at
    /// exactly the right position whichever lane the first byte lands in.
    #[test]
    fn prefiltered_finds_planted_matches_across_chunk_boundaries(
        pattern in prop::collection::vec(any::<u8>(), 1..12),
        noise in prop::collection::vec(any::<u8>(), 0..40),
        at in 0usize..40,
        tail in 0usize..9,
    ) {
        let mut hay = noise.clone();
        let at = at.min(hay.len());
        hay.splice(at..at, pattern.iter().copied());
        hay.extend(std::iter::repeat_n(0u8, tail)); // end mid-chunk
        let set = PatternSet::from_patterns([pattern.as_slice()]);
        let dense = AcDfa::new(set.clone());
        let pre = PrefilteredDfa::new(set);
        prop_assert!(pre.is_match(&hay), "planted pattern must be found");
        let mut a = dense.find_all(&hay);
        let mut b = pre.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The CSR sparse automaton is decision-for-decision the dense DFA:
    /// same matches, same first-match identity, on the full byte alphabet.
    #[test]
    fn sparse_agrees_with_naive_and_dense(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let dense = AcDfa::new(set.clone());
        let sparse = SparseNfa::new(set.clone());
        let mut a = naive::find_all(&set, &hay);
        let mut b = sparse.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(sparse.is_match(&hay), dense.is_match(&hay));
        prop_assert_eq!(sparse.find_first(&hay), dense.find_first(&hay));
        prop_assert_eq!(sparse.find_first_id(&hay), dense.find_first_id(&hay));
    }

    /// The Bloom-prefiltered sparse scan reports exactly the dense DFA's
    /// matches — the window prefilter may only add candidate entries, never
    /// skip a real one — on the full byte alphabet.
    #[test]
    fn bloom_sparse_agrees_with_naive_and_dense(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let dense = AcDfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set.clone());
        let mut a = naive::find_all(&set, &hay);
        let mut b = bloomed.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(bloomed.is_match(&hay), dense.is_match(&hay));
        prop_assert_eq!(bloomed.find_first(&hay), dense.find_first(&hay));
        prop_assert_eq!(bloomed.find_first_id(&hay), dense.find_first_id(&hay));
    }

    /// Planted occurrences at arbitrary offsets (sweeping every window
    /// alignment) in noise: the Bloom window scan must hand over to the
    /// automaton at exactly the right position, including when the planted
    /// pattern straddles a resume point.
    #[test]
    fn bloom_sparse_finds_planted_matches_at_any_offset(
        pattern in prop::collection::vec(any::<u8>(), 1..12),
        noise in prop::collection::vec(any::<u8>(), 0..40),
        at in 0usize..40,
    ) {
        let mut hay = noise.clone();
        let at = at.min(hay.len());
        hay.splice(at..at, pattern.iter().copied());
        let set = PatternSet::from_patterns([pattern.as_slice()]);
        let dense = AcDfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set);
        prop_assert!(bloomed.is_match(&hay), "planted pattern must be found");
        let mut a = dense.find_all(&hay);
        let mut b = bloomed.find_all(&hay);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Wu–Manber reports exactly the reference matcher's matches for any
    /// pattern set with ≥2-byte patterns.
    #[test]
    fn wu_manber_agrees_with_naive(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 2..8), 1..8),
        hay in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        use sd_match::wumanber::WuManber;
        let set = PatternSet::from_patterns(patterns.iter().map(|p| p.as_slice()));
        let wm = WuManber::new(set.clone());
        let mut a = naive::find_all(&set, &hay);
        let mut b = wm.find_all(&hay);
        a.sort_by_key(|m| (m.end, m.pattern));
        b.sort_by_key(|m| (m.end, m.pattern));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(wm.is_match(&hay), !a.is_empty());
    }
}
