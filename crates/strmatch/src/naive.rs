//! The obviously-correct reference matcher.
//!
//! Quadratic, allocation-free, and trivially auditable. Every other engine
//! in this crate is cross-checked against it in tests; it is never used on
//! a data path.

use crate::pattern::{Match, PatternSet};

/// Find all occurrences (including overlapping) of every pattern in `set`
/// within `hay`, in order of end offset, ties by pattern id.
pub fn find_all(set: &PatternSet, hay: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for end in 1..=hay.len() {
        for (id, pat) in set.iter() {
            if pat.len() <= end && &hay[end - pat.len()..end] == pat {
                out.push(Match::new(id, end));
            }
        }
    }
    out
}

/// True if any pattern occurs in `hay`.
pub fn is_match(set: &PatternSet, hay: &[u8]) -> bool {
    set.iter()
        .any(|(_, pat)| pat.len() <= hay.len() && hay.windows(pat.len()).any(|w| w == pat))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_overlapping() {
        let set = PatternSet::from_patterns(["aa"]);
        let ms = find_all(&set, b"aaaa");
        assert_eq!(
            ms,
            vec![Match::new(0, 2), Match::new(0, 3), Match::new(0, 4)]
        );
    }

    #[test]
    fn finds_multiple_patterns_at_same_end() {
        let set = PatternSet::from_patterns(["he", "she", "e"]);
        let ms = find_all(&set, b"she");
        // End 2: "sh" no... end offsets: "e" at 3, "he" at 3, "she" at 3.
        assert_eq!(
            ms,
            vec![Match::new(0, 3), Match::new(1, 3), Match::new(2, 3)]
        );
    }

    #[test]
    fn empty_haystack_no_match() {
        let set = PatternSet::from_patterns(["a"]);
        assert!(find_all(&set, b"").is_empty());
        assert!(!is_match(&set, b""));
    }

    #[test]
    fn is_match_agrees_with_find_all() {
        let set = PatternSet::from_patterns(["abc", "zzz"]);
        assert!(is_match(&set, b"xxabcxx"));
        assert!(!is_match(&set, b"xxabxcx"));
        assert_eq!(
            is_match(&set, b"xxabcxx"),
            !find_all(&set, b"xxabcxx").is_empty()
        );
    }
}
