//! Dense DFA compiled from the Aho–Corasick NFA.
//!
//! Every state stores a full 256-entry next-state row, so the inner search
//! loop is exactly one load and one index per input byte — no failure-link
//! chains, no branches that depend on pattern structure. This is the
//! software analogue of the TCAM/SRAM automaton the paper budgets for its
//! 20 Gbps fast path, and it is what [`crate::stream::StreamMatcher`] and
//! the Split-Detect fast path run.

use crate::aho::AhoCorasick;
use crate::pattern::{Match, PatternId, PatternSet};

/// A dense Aho–Corasick DFA.
#[derive(Debug, Clone)]
pub struct AcDfa {
    /// `delta[state * 256 + byte]` = next state.
    delta: Vec<u32>,
    /// Pattern ids ending at each state (empty for most states).
    outputs: Vec<Box<[PatternId]>>,
    /// Per-state "any output?" flag, checked before touching `outputs`.
    has_output: Vec<bool>,
    set: PatternSet,
}

impl AcDfa {
    /// Compile a DFA from patterns (builds the NFA internally).
    pub fn new(set: PatternSet) -> Self {
        Self::from_nfa(&AhoCorasick::new(set))
    }

    /// Compile a DFA from an existing NFA.
    pub fn from_nfa(nfa: &AhoCorasick) -> Self {
        let n = nfa.state_count();
        let mut delta = vec![0u32; n * 256];
        let mut outputs = Vec::with_capacity(n);
        let mut has_output = Vec::with_capacity(n);
        for s in 0..n as u32 {
            for b in 0..=255u8 {
                delta[s as usize * 256 + b as usize] = nfa.step(s, b);
            }
            let out = nfa.outputs(s).to_vec().into_boxed_slice();
            has_output.push(!out.is_empty());
            outputs.push(out);
        }
        AcDfa {
            delta,
            outputs,
            has_output,
            set: nfa.patterns().clone(),
        }
    }

    /// The pattern set this DFA recognizes.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// The start state.
    pub const START: u32 = 0;

    /// One transition.
    #[inline(always)]
    pub fn next_state(&self, state: u32, byte: u8) -> u32 {
        self.delta[state as usize * 256 + byte as usize]
    }

    /// True if `state` reports at least one pattern.
    #[inline(always)]
    pub fn is_match_state(&self, state: u32) -> bool {
        self.has_output[state as usize]
    }

    /// Pattern ids ending at `state`.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.outputs[state as usize]
    }

    /// Find all matches in `hay` with end offsets relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                for &p in self.outputs(state) {
                    out.push(Match::new(p, i + 1));
                }
            }
        }
        out
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(Match::new(self.outputs(state)[0], i + 1));
            }
        }
        None
    }

    /// Pattern id of the first match, without materializing a [`Match`] —
    /// the fast path only wants "which piece", never the offset.
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        let mut state = Self::START;
        for &b in hay {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(self.outputs(state)[0]);
            }
        }
        None
    }

    /// True if any pattern occurs in `hay`. This is the exact per-packet
    /// hot loop of the fast path.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        let mut state = Self::START;
        for &b in hay {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return true;
            }
        }
        false
    }

    /// Heap footprint in bytes: the transition table dominates
    /// (`states × 256 × 4`).
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.delta.len() * 4;
        total += self.has_output.len();
        for o in &self.outputs {
            total += o.len() * std::mem::size_of::<PatternId>() + std::mem::size_of::<usize>();
        }
        total += self.set.total_bytes();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check(patterns: &[&[u8]], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let dfa = AcDfa::new(set.clone());
        let mut got = dfa.find_all(hay);
        let mut want = naive::find_all(&set, hay);
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(dfa.is_match(hay), !want.is_empty());
    }

    #[test]
    fn agrees_with_naive_on_classics() {
        check(&[b"he", b"she", b"his", b"hers"], b"ushers use hershey");
        check(&[b"aa", b"aaa", b"aaaa"], b"aaaaaa");
        check(
            &[b"GET", b"POST", b"HEAD"],
            b"GET / HTTP/1.1\r\nHost: POSTofficePOST",
        );
    }

    #[test]
    fn dfa_equals_nfa() {
        let set = PatternSet::from_patterns([b"abab".as_slice(), b"baba", b"ab"]);
        let nfa = AhoCorasick::new(set);
        let dfa = AcDfa::from_nfa(&nfa);
        let hay = b"abababababab";
        let mut a = nfa.find_all(hay);
        let mut d = dfa.find_all(hay);
        a.sort();
        d.sort();
        assert_eq!(a, d);
        assert_eq!(nfa.state_count(), dfa.state_count());
    }

    #[test]
    fn stepwise_api_matches_batch() {
        let dfa = AcDfa::new(PatternSet::from_patterns(["needle"]));
        let hay = b"hay needle hay";
        let mut state = AcDfa::START;
        let mut ends = Vec::new();
        for (i, &b) in hay.iter().enumerate() {
            state = dfa.next_state(state, b);
            if dfa.is_match_state(state) {
                ends.push(i + 1);
            }
        }
        assert_eq!(ends, vec![10]);
        assert_eq!(dfa.find_all(hay), vec![Match::new(0, 10)]);
    }

    #[test]
    fn find_first_early_exit() {
        let dfa = AcDfa::new(PatternSet::from_patterns(["ab", "abcdef"]));
        assert_eq!(dfa.find_first(b"abcdef"), Some(Match::new(0, 2)));
        assert_eq!(dfa.find_first_id(b"abcdef"), Some(0));
        assert_eq!(dfa.find_first_id(b"zzz"), None);
    }

    #[test]
    fn all_256_byte_values() {
        let p: Vec<u8> = vec![0, 127, 255];
        let set = PatternSet::from_patterns([p.clone()]);
        let dfa = AcDfa::new(set);
        let mut hay: Vec<u8> = (0u8..=255).collect();
        hay.extend_from_slice(&p);
        let ms = dfa.find_all(&hay);
        assert!(ms.iter().any(|m| m.end == hay.len()));
    }

    #[test]
    fn memory_scales_with_states() {
        let small = AcDfa::new(PatternSet::from_patterns(["ab"]));
        let large = AcDfa::new(PatternSet::from_patterns([
            "abcdefghij",
            "klmnopqrst",
            "uvwxyz0123",
        ]));
        assert!(large.memory_bytes() > small.memory_bytes());
        // Transition table dominance: at least states*1024 bytes.
        assert!(large.memory_bytes() >= large.state_count() * 1024);
    }
}
