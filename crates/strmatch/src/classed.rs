//! Byte-class compressed DFA.
//!
//! Two input bytes are *equivalent* when every state sends them to the same
//! next state; the automaton then only needs one transition column per
//! equivalence class. Content rule sets mention a small slice of the byte
//! alphabet, so the 256-wide dense rows of [`crate::dfa::AcDfa`] collapse
//! to a handful of classes — typically a 4–10× table shrink that keeps real
//! rule sets L1/L2-resident. The inner loop gains one extra load (the
//! 256-byte `classes` map, which lives in four cache lines and is hot
//! forever) and keeps the dense DFA's worst-case bound: still exactly one
//! transition per input byte.

use crate::aho::AhoCorasick;
use crate::pattern::{Match, PatternId, PatternSet};
use std::collections::HashMap;

/// A dense Aho–Corasick DFA over byte equivalence classes.
#[derive(Debug, Clone)]
pub struct ClassedDfa {
    /// Byte → equivalence class (class ids are dense, `< class_count`).
    classes: Box<[u8; 256]>,
    /// Number of distinct classes (the row stride).
    class_count: usize,
    /// `delta[state * class_count + class]` = next state.
    delta: Vec<u32>,
    /// Pattern ids ending at each state (empty for most states).
    outputs: Vec<Box<[PatternId]>>,
    /// Per-state "any output?" flag, checked before touching `outputs`.
    has_output: Vec<bool>,
    set: PatternSet,
}

impl ClassedDfa {
    /// Compile from patterns (builds the NFA internally).
    pub fn new(set: PatternSet) -> Self {
        Self::from_nfa(&AhoCorasick::new(set))
    }

    /// Compile from an existing NFA: materialize every transition column,
    /// merge identical columns into one class, then lay out the compressed
    /// table.
    pub fn from_nfa(nfa: &AhoCorasick) -> Self {
        let n = nfa.state_count();
        // Column signatures: cols[b][s] = δ(s, b). Two bytes are in the
        // same class iff their columns are identical.
        let cols: Vec<Vec<u32>> = (0..=255u8)
            .map(|b| (0..n as u32).map(|s| nfa.step(s, b)).collect())
            .collect();
        let mut classes = Box::new([0u8; 256]);
        let mut reps: Vec<usize> = Vec::new(); // representative byte per class
        let mut seen: HashMap<&[u32], u8> = HashMap::new();
        for b in 0..256usize {
            let col = cols[b].as_slice();
            let class = *seen.entry(col).or_insert_with(|| {
                reps.push(b);
                (reps.len() - 1) as u8
            });
            classes[b] = class;
        }
        let class_count = reps.len();

        let mut delta = vec![0u32; n * class_count];
        for s in 0..n {
            for (c, &rep) in reps.iter().enumerate() {
                delta[s * class_count + c] = cols[rep][s];
            }
        }
        let mut outputs = Vec::with_capacity(n);
        let mut has_output = Vec::with_capacity(n);
        for s in 0..n as u32 {
            let out = nfa.outputs(s).to_vec().into_boxed_slice();
            has_output.push(!out.is_empty());
            outputs.push(out);
        }
        ClassedDfa {
            classes,
            class_count,
            delta,
            outputs,
            has_output,
            set: nfa.patterns().clone(),
        }
    }

    /// The pattern set this DFA recognizes.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of byte equivalence classes (the compressed row width; the
    /// dense DFA's is always 256).
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The start state.
    pub const START: u32 = 0;

    /// One transition.
    #[inline(always)]
    pub fn next_state(&self, state: u32, byte: u8) -> u32 {
        let class = self.classes[byte as usize] as usize;
        self.delta[state as usize * self.class_count + class]
    }

    /// True if `state` reports at least one pattern.
    #[inline(always)]
    pub fn is_match_state(&self, state: u32) -> bool {
        self.has_output[state as usize]
    }

    /// Pattern ids ending at `state`.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.outputs[state as usize]
    }

    /// Find all matches in `hay` with end offsets relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                for &p in self.outputs(state) {
                    out.push(Match::new(p, i + 1));
                }
            }
        }
        out
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(Match::new(self.outputs(state)[0], i + 1));
            }
        }
        None
    }

    /// Pattern id of the first match, without materializing a [`Match`] —
    /// the fast path only wants "which piece", never the offset.
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        let mut state = Self::START;
        for &b in hay {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(self.outputs(state)[0]);
            }
        }
        None
    }

    /// True if any pattern occurs in `hay`.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first_id(hay).is_some()
    }

    /// Heap footprint in bytes: the compressed transition table plus the
    /// 256-byte class map.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.delta.len() * 4 + 256;
        total += self.has_output.len();
        for o in &self.outputs {
            total += o.len() * std::mem::size_of::<PatternId>() + std::mem::size_of::<usize>();
        }
        total += self.set.total_bytes();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::AcDfa;
    use crate::naive;

    fn check(patterns: &[&[u8]], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let dfa = ClassedDfa::new(set.clone());
        let mut got = dfa.find_all(hay);
        let mut want = naive::find_all(&set, hay);
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(dfa.is_match(hay), !want.is_empty());
    }

    #[test]
    fn agrees_with_naive_on_classics() {
        check(&[b"he", b"she", b"his", b"hers"], b"ushers use hershey");
        check(&[b"aa", b"aaa", b"aaaa"], b"aaaaaa");
        check(
            &[b"GET", b"POST", b"HEAD"],
            b"GET / HTTP/1.1\r\nHost: POSTofficePOST",
        );
    }

    #[test]
    fn classed_equals_dense_transition_for_transition() {
        let set = PatternSet::from_patterns([b"abab".as_slice(), b"baba", b"ab"]);
        let dense = AcDfa::new(set.clone());
        let classed = ClassedDfa::new(set);
        assert_eq!(dense.state_count(), classed.state_count());
        for s in 0..dense.state_count() as u32 {
            for b in 0..=255u8 {
                assert_eq!(dense.next_state(s, b), classed.next_state(s, b));
            }
            assert_eq!(dense.outputs(s), classed.outputs(s));
        }
    }

    #[test]
    fn class_count_is_small_for_narrow_alphabets() {
        // Patterns over {a, b} need exactly 3 classes: a, b, everything else.
        let dfa = ClassedDfa::new(PatternSet::from_patterns([b"ab".as_slice(), b"ba"]));
        assert_eq!(dfa.class_count(), 3);
        // Every byte maps to a valid class.
        for b in 0..=255u8 {
            let _ = dfa.next_state(ClassedDfa::START, b);
        }
    }

    #[test]
    fn table_shrinks_versus_dense() {
        let pats: Vec<String> = (0..20).map(|i| format!("piece{i:02}xx")).collect();
        let set = PatternSet::from_patterns(pats.iter().map(|s| s.as_bytes()));
        let dense = AcDfa::new(set.clone());
        let classed = ClassedDfa::new(set);
        assert!(classed.class_count() < 64, "{}", classed.class_count());
        assert!(
            classed.memory_bytes() * 4 < dense.memory_bytes(),
            "classed {} vs dense {}",
            classed.memory_bytes(),
            dense.memory_bytes()
        );
    }

    #[test]
    fn all_256_byte_values() {
        let p: Vec<u8> = vec![0, 127, 255];
        let set = PatternSet::from_patterns([p.clone()]);
        let dfa = ClassedDfa::new(set);
        let mut hay: Vec<u8> = (0u8..=255).collect();
        hay.extend_from_slice(&p);
        let ms = dfa.find_all(&hay);
        assert!(ms.iter().any(|m| m.end == hay.len()));
    }

    #[test]
    fn find_first_id_early_exits_to_first_pattern() {
        let dfa = ClassedDfa::new(PatternSet::from_patterns(["ab", "abcdef"]));
        assert_eq!(dfa.find_first_id(b"abcdef"), Some(0));
        assert_eq!(dfa.find_first(b"abcdef"), Some(Match::new(0, 2)));
        assert_eq!(dfa.find_first_id(b"zzz"), None);
    }
}
