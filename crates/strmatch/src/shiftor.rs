//! Bit-parallel shift-or (Baeza-Yates–Gonnet) matching.
//!
//! A pattern of length m ≤ 64 is matched with two operations per haystack
//! byte: a shift and an OR against a 256-entry mask table. Signature
//! *pieces* in Split-Detect are short by construction (the paper's fast
//! path wants small p), so a bank of shift-or units is a plausible
//! alternative hardware fast path; the `matcher` bench compares it against
//! the dense DFA.
//!
//! [`ShiftOrBank`] additionally packs *several* short patterns into one
//! machine word (bit-split style), matching them all simultaneously as long
//! as their total length is ≤ 64.

/// Single-pattern shift-or matcher (pattern length ≤ 64).
#[derive(Debug, Clone)]
pub struct ShiftOr {
    mask: [u64; 256],
    /// Bit set when the full pattern has matched.
    accept: u64,
    len: usize,
}

impl ShiftOr {
    /// Compile a pattern of length 1..=64.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(
            !pattern.is_empty() && pattern.len() <= 64,
            "shift-or patterns must be 1..=64 bytes"
        );
        // mask[b] has bit i CLEARED iff pattern[i] == b.
        let mut mask = [!0u64; 256];
        for (i, &b) in pattern.iter().enumerate() {
            mask[b as usize] &= !(1u64 << i);
        }
        ShiftOr {
            mask,
            accept: 1u64 << (pattern.len() - 1),
            len: pattern.len(),
        }
    }

    /// Pattern length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if this matcher's pattern is a single byte.
    pub fn is_empty(&self) -> bool {
        false // patterns are never empty by construction
    }

    /// All end offsets (exclusive) of occurrences in `hay`.
    pub fn find_ends(&self, hay: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut state = !0u64;
        for (i, &b) in hay.iter().enumerate() {
            state = (state << 1) | self.mask[b as usize];
            if state & self.accept == 0 {
                out.push(i + 1);
            }
        }
        out
    }

    /// True if the pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        let mut state = !0u64;
        for &b in hay {
            state = (state << 1) | self.mask[b as usize];
            if state & self.accept == 0 {
                return true;
            }
        }
        false
    }
}

/// Several short patterns packed into one 64-bit shift-or word.
///
/// Each pattern occupies a contiguous bit range; a guard bit per pattern
/// stops the shift from leaking one pattern's state into the next. Total
/// packed width (sum of lengths) must be ≤ 64.
#[derive(Debug, Clone)]
pub struct ShiftOrBank {
    mask: [u64; 256],
    /// One accept bit per pattern (its highest bit position).
    accept: u64,
    /// Bits at each pattern's *first* position. After the shift, these bit
    /// positions hold the previous pattern's top bit — garbage. They are
    /// ANDed away (`state << 1 & !start_guard`) so every position can start
    /// a fresh match, exactly like bit 0 in single-pattern shift-or where
    /// the shift inserts a literal 0.
    start_guard: u64,
    /// Map from accept-bit position to pattern index.
    bit_to_pattern: Vec<(u32, usize)>,
}

impl ShiftOrBank {
    /// Pack patterns; panics if any is empty or the total length exceeds 64.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let total: usize = patterns.iter().map(|p| p.as_ref().len()).sum();
        assert!(
            total > 0 && total <= 64,
            "bank must pack 1..=64 total bytes"
        );
        let mut mask = [!0u64; 256];
        let mut accept = 0u64;
        let mut start_guard = 0u64;
        let mut bit_to_pattern = Vec::new();
        let mut base = 0u32;
        for (pi, p) in patterns.iter().enumerate() {
            let p = p.as_ref();
            assert!(!p.is_empty(), "empty patterns are not allowed");
            for (i, &b) in p.iter().enumerate() {
                mask[b as usize] &= !(1u64 << (base + i as u32));
            }
            // Without the guard, pattern pi-1's top bit would shift into
            // pattern pi's first bit and block (or spuriously allow)
            // matches there.
            if base > 0 {
                start_guard |= 1u64 << base;
            }
            let acc_bit = base + p.len() as u32 - 1;
            accept |= 1u64 << acc_bit;
            bit_to_pattern.push((acc_bit, pi));
            base += p.len() as u32;
        }
        ShiftOrBank {
            mask,
            accept,
            start_guard,
            bit_to_pattern,
        }
    }

    /// For each haystack position where at least one pattern ends, report
    /// `(end, pattern_index)`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut state = !0u64;
        for (i, &b) in hay.iter().enumerate() {
            state = ((state << 1) & !self.start_guard) | self.mask[b as usize];
            let hits = !state & self.accept;
            if hits != 0 {
                for &(bit, pi) in &self.bit_to_pattern {
                    if hits & (1u64 << bit) != 0 {
                        out.push((i + 1, pi));
                    }
                }
            }
        }
        out
    }

    /// True if any packed pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        let mut state = !0u64;
        for &b in hay {
            state = ((state << 1) & !self.start_guard) | self.mask[b as usize];
            if !state & self.accept != 0 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::pattern::PatternSet;

    #[test]
    fn single_matches_naive() {
        let pat = b"abcab";
        let so = ShiftOr::new(pat);
        let hay = b"xabcabcababcab";
        let set = PatternSet::from_patterns([pat]);
        let want: Vec<usize> = naive::find_all(&set, hay).iter().map(|m| m.end).collect();
        assert_eq!(so.find_ends(hay), want);
        assert!(so.is_match(hay));
        assert!(!so.is_match(b"nothing here"));
    }

    #[test]
    fn max_length_64() {
        let pat: Vec<u8> = (0..64).map(|i| (i * 7 % 256) as u8).collect();
        let so = ShiftOr::new(&pat);
        let mut hay = vec![1u8, 2, 3];
        hay.extend_from_slice(&pat);
        assert_eq!(so.find_ends(&hay), vec![hay.len()]);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_too_long() {
        ShiftOr::new(&[0u8; 65]);
    }

    #[test]
    fn bank_matches_each_pattern_independently() {
        let pats: Vec<&[u8]> = vec![b"abc", b"bcd", b"xyz"];
        let bank = ShiftOrBank::new(&pats);
        let hay = b"zabcdxyz";
        let mut got = bank.find_all(hay);
        got.sort();
        // abc ends at 4, bcd ends at 5, xyz ends at 8.
        assert_eq!(got, vec![(4, 0), (5, 1), (8, 2)]);
    }

    #[test]
    fn bank_no_cross_pattern_leakage() {
        // "ab" then "ba": the string "aba" must match "ab" (end 2) and "ba"
        // (end 3) but a leak across the guard would also fire spuriously.
        let pats: Vec<&[u8]> = vec![b"ab", b"ba"];
        let bank = ShiftOrBank::new(&pats);
        let mut got = bank.find_all(b"aba");
        got.sort();
        assert_eq!(got, vec![(2, 0), (3, 1)]);
        // A haystack matching neither.
        assert!(!bank.is_match(b"aa-bb"));
    }

    #[test]
    fn bank_agrees_with_naive() {
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let bank = ShiftOrBank::new(&pats);
        let hay = b"ushers and his shed";
        let set = PatternSet::from_patterns(pats);
        let mut want: Vec<(usize, usize)> = naive::find_all(&set, hay)
            .iter()
            .map(|m| (m.end, m.pattern as usize))
            .collect();
        want.sort();
        let mut got = bank.find_all(hay);
        got.sort();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "1..=64 total")]
    fn bank_rejects_overflow() {
        let pats: Vec<Vec<u8>> = (0..5).map(|_| vec![0u8; 13]).collect();
        ShiftOrBank::new(&pats); // 65 bytes total
    }
}
