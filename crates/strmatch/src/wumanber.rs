//! Wu–Manber multi-pattern matching.
//!
//! The engine the paper-era software IPSes (Snort's `mwm`) actually used:
//! a Boyer–Moore-style bad-block shift table over 2-byte blocks, giving
//! sublinear scans when patterns are long and the alphabet effectively
//! large — and degrading toward per-byte work as the pattern set grows
//! (the shift table fills with zeros). That degradation is precisely why
//! the paper's line-rate argument assumes a DFA; the `matcher` bench puts
//! the two side by side.

use crate::pattern::{Match, PatternId, PatternSet};

/// Block size: 2-byte blocks index a 64 K shift table.
const B: usize = 2;

/// A compiled Wu–Manber matcher.
#[derive(Debug, Clone)]
pub struct WuManber {
    set: PatternSet,
    /// Window length: the shortest pattern length.
    m: usize,
    /// Bad-block shift per 2-byte block value.
    shift: Vec<u16>,
    /// Patterns whose block ending at offset `m` equals the index block.
    buckets: Vec<Vec<PatternId>>,
}

impl WuManber {
    /// Compile a pattern set.
    ///
    /// # Panics
    /// Panics if the set is empty or any pattern is shorter than 2 bytes
    /// (block size) — the same preconditions the classical implementation
    /// documents.
    pub fn new(set: PatternSet) -> Self {
        let m = set.min_len().expect("Wu-Manber needs at least one pattern");
        assert!(m >= B, "Wu-Manber needs patterns of at least {B} bytes");

        let default_shift = (m - B + 1) as u16;
        let mut shift = vec![default_shift; 1 << 16];
        let mut buckets: Vec<Vec<PatternId>> = vec![Vec::new(); 1 << 16];

        for (id, pat) in set.iter() {
            // Only the first m bytes participate in the tables; the
            // verifier checks the rest.
            for q in B..=m {
                let block = ((pat[q - 2] as usize) << 8) | pat[q - 1] as usize;
                let s = (m - q) as u16;
                if s < shift[block] {
                    shift[block] = s;
                }
                if q == m {
                    buckets[block].push(id);
                }
            }
        }
        WuManber {
            set,
            m,
            shift,
            buckets,
        }
    }

    /// The compiled pattern set.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Window (minimum pattern) length.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Table memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.shift.len() * 2
            + self
                .buckets
                .iter()
                .map(|b| b.len() * std::mem::size_of::<PatternId>())
                .sum::<usize>()
    }

    /// Find all matches (end offsets, overlapping included) — identical
    /// results to [`crate::AcDfa::find_all`] modulo ordering.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        if hay.len() < self.m {
            return out;
        }
        let mut i = 0usize; // window start
        while i + self.m <= hay.len() {
            let block = ((hay[i + self.m - 2] as usize) << 8) | hay[i + self.m - 1] as usize;
            let s = self.shift[block];
            if s > 0 {
                i += s as usize;
                continue;
            }
            // Candidate alignment: verify every bucketed pattern.
            for &id in &self.buckets[block] {
                let pat = self.set.pattern(id);
                if hay[i..].starts_with(pat) {
                    out.push(Match::new(id, i + pat.len()));
                }
            }
            i += 1;
        }
        out
    }

    /// True if any pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        if hay.len() < self.m {
            return false;
        }
        let mut i = 0usize;
        while i + self.m <= hay.len() {
            let block = ((hay[i + self.m - 2] as usize) << 8) | hay[i + self.m - 1] as usize;
            let s = self.shift[block];
            if s > 0 {
                i += s as usize;
                continue;
            }
            for &id in &self.buckets[block] {
                if hay[i..].starts_with(self.set.pattern(id)) {
                    return true;
                }
            }
            i += 1;
        }
        false
    }

    /// Fraction of shift-table entries that are zero — the "degradation
    /// gauge": at 0 the scan is fully sublinear, near 1 every window needs
    /// verification and the engine works per byte.
    pub fn zero_shift_fraction(&self) -> f64 {
        let zeros = self.shift.iter().filter(|&&s| s == 0).count();
        zeros as f64 / self.shift.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::AcDfa;

    fn wm(patterns: &[&[u8]]) -> WuManber {
        WuManber::new(PatternSet::from_patterns(patterns.iter().copied()))
    }

    #[test]
    fn single_pattern_all_occurrences() {
        let w = wm(&[b"abab"]);
        let hits = w.find_all(b"xababab");
        assert_eq!(hits.len(), 2, "overlapping matches must both appear");
        assert_eq!(hits[0].end, 5);
        assert_eq!(hits[1].end, 7);
    }

    #[test]
    fn multiple_patterns_of_different_lengths() {
        let w = wm(&[b"needle", b"pin", b"needless"]);
        let hay = b"a needle in a needless haystack with a pin";
        let mut got = w.find_all(hay);
        got.sort_by_key(|m| (m.end, m.pattern));
        // Cross-check against the quadratic reference.
        let mut want = naive::find_all(w.patterns(), hay);
        want.sort_by_key(|m| (m.end, m.pattern));
        assert_eq!(got, want);
        assert!(w.is_match(hay));
        assert!(!w.is_match(b"nothing here"));
    }

    #[test]
    fn agrees_with_dfa_on_dense_input() {
        let patterns: Vec<&[u8]> = vec![b"aa", b"aba", b"bab", b"abba"];
        let w = wm(&patterns);
        let dfa = AcDfa::new(PatternSet::from_patterns(patterns.iter().copied()));
        for len in 0..=12usize {
            for bits in 0u32..1 << len {
                let hay: Vec<u8> = (0..len)
                    .map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' })
                    .collect();
                let mut a = dfa.find_all(&hay);
                let mut b = w.find_all(&hay);
                a.sort_by_key(|m| (m.end, m.pattern));
                b.sort_by_key(|m| (m.end, m.pattern));
                assert_eq!(a, b, "divergence on {:?}", String::from_utf8_lossy(&hay));
            }
        }
    }

    #[test]
    fn short_haystacks() {
        let w = wm(&[b"abc"]);
        assert!(w.find_all(b"").is_empty());
        assert!(w.find_all(b"ab").is_empty());
        assert_eq!(w.find_all(b"abc").len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_set_panics() {
        WuManber::new(PatternSet::new());
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn one_byte_pattern_panics() {
        wm(&[b"x"]);
    }

    #[test]
    fn degradation_gauge_rises_with_pattern_count() {
        let few = WuManber::new(crate::pattern::PatternSet::from_patterns(
            (0..10)
                .map(|i| format!("pattern-{i:04}").into_bytes())
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        ));
        let many = WuManber::new(crate::pattern::PatternSet::from_patterns(
            (0..2000)
                .map(|i| format!("pattern-{i:04}").into_bytes())
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        ));
        assert!(many.zero_shift_fraction() >= few.zero_shift_fraction());
        assert!(few.memory_bytes() >= 1 << 17);
    }
}
