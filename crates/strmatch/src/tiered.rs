//! Two-tier Aho–Corasick: dense byte-classed rows for the hot shallow
//! states, CSR sorted-edge lists for the cold tail.
//!
//! The dense DFA ([`crate::dfa::AcDfa`]) is the throughput champion but
//! spends 1 KB per state — ruinous at 10k-rule corpora (hundreds of MB).
//! The CSR hybrid ([`crate::sparse::SparseNfa`]) keeps memory
//! `O(pattern bytes)` but pays a binary search plus a failure-chain walk
//! per byte once the automaton leaves its dense root row, which is why
//! `scan10k/benign` runs at ~0.3× dense. Benign traffic, however, spends
//! nearly all its time in the *shallow* states: the root and the first
//! couple of trie levels absorb almost every byte, and the deep tail of
//! the trie exists only to recognize suspicious continuations. That
//! locality is the whole case for a tiered layout:
//!
//! * **hot tier** — the first `H` states in breadth-first (depth) order,
//!   renumbered to ids `0..H`, stored as fully failure-resolved rows
//!   compressed by byte equivalence classes (computed over the hot rows
//!   only, so the build never touches the `O(states × 256)` full-column
//!   cost that makes [`crate::classed::ClassedDfa`] unbuildable at scale).
//!   Stepping from a hot state is one class load plus one table load —
//!   the same bound as the classed DFA.
//! * **cold tier** — every remaining state, renumbered to `H..n`, kept in
//!   the CSR form of [`crate::sparse::SparseNfa`]: sorted edge arrays
//!   plus a failure link. Failure links strictly decrease trie depth, and
//!   the hot tier is a depth-ordered prefix rooted at depth 0, so every
//!   failure chain re-enters the hot tier (at worst at the root) — cold
//!   walks terminate without a dense root row of their own.
//!
//! The scan loop fronts the root row with the same SWAR start-state skip
//! ([`crate::prefilter::StartSkip`]) that makes the prefiltered classed
//! engine ~4× dense on benign bytes: while the automaton would sit in the
//! start state, bytes outside the root's escape set are dismissed eight
//! per step, and the exactness argument is identical to
//! [`crate::prefilter::PrefilteredDfa`]'s (skipped bytes provably keep
//! the automaton at start, and start never reports a match).
//!
//! Tier membership defaults to a byte-budget heuristic — spend about as
//! many bytes on the hot tier as the whole CSR arena would occupy, so the
//! total stays within ~2× the sparse representation — and can be pinned
//! with an explicit hot-state count (the `tiered_hot_states` config knob
//! / `--tiered-hot` CLI flag).

use std::collections::HashMap;

use crate::aho::AhoCorasick;
use crate::pattern::{Match, PatternId, PatternSet};
use crate::prefilter::StartSkip;

/// Never shrink the hot tier below this many states (when the automaton
/// has them): the root plus its first trie level always fit.
const MIN_HOT_STATES: usize = 256;

/// Per-edge CSR cost in bytes (1 label + 4 next) used by the hot-budget
/// estimate.
const CSR_EDGE_BYTES: usize = 5;

/// Per-state CSR overhead in bytes (4 offset + 4 fail) used by the
/// hot-budget estimate.
const CSR_STATE_BYTES: usize = 8;

/// Two-tier Aho–Corasick automaton: byte-classed dense rows for states
/// `0..hot_count`, CSR edges + failure links for the tail.
#[derive(Debug, Clone)]
pub struct TieredNfa {
    /// States `0..hot_count` are hot (dense rows); the root is state 0.
    hot_count: u32,
    /// Byte equivalence classes over the hot rows.
    class_count: u32,
    /// Byte → class, for the hot-tier lookup.
    classes: Box<[u8; 256]>,
    /// Hot transition table, `hot_count × class_count`, fully
    /// failure-resolved (targets may be cold states).
    hot: Vec<u32>,
    /// CSR offsets for cold state `s`: edges
    /// `edge_start[s - hot_count] .. edge_start[s - hot_count + 1]`.
    edge_start: Vec<u32>,
    /// Sorted byte labels of cold-state trie edges.
    edge_bytes: Vec<u8>,
    /// Edge targets parallel to `edge_bytes` (renumbered ids).
    edge_next: Vec<u32>,
    /// Failure link per cold state (renumbered; strictly shallower).
    fail: Vec<u32>,
    /// Pattern ids ending at each state (failure-chain outputs merged),
    /// indexed by renumbered id.
    outputs: Vec<Box<[PatternId]>>,
    /// Per-state "any output?" flag, checked before touching `outputs`.
    has_output: Vec<bool>,
    /// SWAR skip over the root row's escape bytes.
    skip: StartSkip,
    set: PatternSet,
}

impl TieredNfa {
    /// The start state.
    pub const START: u32 = 0;

    /// Compile from patterns with the default hot-tier budget.
    pub fn new(set: PatternSet) -> Self {
        Self::from_nfa(&AhoCorasick::new(set), None)
    }

    /// Compile from patterns with an explicit hot-state count.
    pub fn with_hot_states(set: PatternSet, hot_states: usize) -> Self {
        Self::from_nfa(&AhoCorasick::new(set), Some(hot_states))
    }

    /// Compile from an existing NFA. `hot_states` pins the hot-tier size
    /// (clamped to `1..=state_count`); `None` applies the byte-budget
    /// heuristic.
    pub fn from_nfa(nfa: &AhoCorasick, hot_states: Option<usize>) -> Self {
        let n = nfa.state_count();

        // Breadth-first order: depth ascending, trie insertion order
        // within a depth. The hot tier is a prefix of this order, so it
        // is depth-closed up to its boundary level — every failure link
        // from a cold state lands at a strictly shallower state, which is
        // either hot or an earlier cold state, and the chain bottoms out
        // at the (hot) root.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        order.push(0);
        let mut head = 0usize;
        while head < order.len() {
            let s = order[head];
            head += 1;
            for (_, t) in nfa.transitions(s) {
                order.push(t);
            }
        }
        debug_assert_eq!(order.len(), n, "trie BFS visits every state once");
        let mut new_of: Vec<u32> = vec![0; n];
        for (new, &old) in order.iter().enumerate() {
            new_of[old as usize] = new as u32;
        }

        // Hot-tier sizing. The explicit knob wins; otherwise spend about
        // as many bytes on dense hot rows as the full CSR arena would
        // occupy, converging on the actual class count (classes are
        // computed over hot rows only, so the count depends on the
        // boundary — one or two refinement passes settle it).
        let edges = n.saturating_sub(1); // a trie over n states has n-1 edges
        let csr_budget = edges * CSR_EDGE_BYTES + n * CSR_STATE_BYTES;
        let clamp_hot = |h: usize| h.clamp(MIN_HOT_STATES.min(n).max(1), n);
        let mut hot_count = match hot_states {
            Some(h) => h.clamp(1, n),
            None => clamp_hot(csr_budget / 1024), // worst case: 256 classes
        };
        let (mut classes, mut class_count, mut hot) =
            build_hot_rows(nfa, &order, &new_of, hot_count);
        if hot_states.is_none() {
            for _ in 0..2 {
                let want = clamp_hot(csr_budget / (4 * class_count.max(1)));
                if want == hot_count {
                    break;
                }
                hot_count = want;
                (classes, class_count, hot) = build_hot_rows(nfa, &order, &new_of, hot_count);
            }
        }

        // Cold tail: raw trie edges + failure links, targets renumbered.
        let mut edge_start = Vec::with_capacity(n - hot_count + 1);
        let mut edge_bytes = Vec::new();
        let mut edge_next = Vec::new();
        let mut fail = Vec::with_capacity(n - hot_count);
        for &old in &order[hot_count..] {
            edge_start.push(edge_bytes.len() as u32);
            for (b, t) in nfa.transitions(old) {
                edge_bytes.push(b);
                edge_next.push(new_of[t as usize]);
            }
            fail.push(new_of[nfa.fail(old) as usize]);
        }
        edge_start.push(edge_bytes.len() as u32);

        let mut outputs = Vec::with_capacity(n);
        let mut has_output = Vec::with_capacity(n);
        for &old in &order {
            let out = nfa.outputs(old).to_vec().into_boxed_slice();
            has_output.push(!out.is_empty());
            outputs.push(out);
        }

        let skip = StartSkip::from_escape_bytes((0u8..=255).filter(|&b| nfa.step(0, b) != 0));

        TieredNfa {
            hot_count: hot_count as u32,
            class_count: class_count as u32,
            classes,
            hot,
            edge_start,
            edge_bytes,
            edge_next,
            fail,
            outputs,
            has_output,
            skip,
            set: nfa.patterns().clone(),
        }
    }

    /// The pattern set this automaton recognizes.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Number of states (hot + cold; equals the NFA's).
    pub fn state_count(&self) -> usize {
        self.has_output.len()
    }

    /// States laid out as dense hot rows.
    pub fn hot_state_count(&self) -> usize {
        self.hot_count as usize
    }

    /// States kept in the CSR cold tail.
    pub fn cold_state_count(&self) -> usize {
        self.state_count() - self.hot_state_count()
    }

    /// Byte equivalence classes over the hot rows.
    pub fn class_count(&self) -> usize {
        self.class_count as usize
    }

    /// Distinct bytes that leave the start state (the prefilter's escape
    /// set).
    pub fn escape_count(&self) -> usize {
        self.skip.escape_count()
    }

    /// Hot-tier bytes: the class map plus the dense rows.
    pub fn hot_tier_bytes(&self) -> usize {
        256 + self.hot.len() * 4
    }

    /// Cold-tier bytes: the CSR arrays and failure links.
    pub fn cold_tier_bytes(&self) -> usize {
        self.edge_bytes.len()
            + self.edge_next.len() * 4
            + self.edge_start.len() * 4
            + self.fail.len() * 4
    }

    /// One input byte from `state`. Hot states are one class load plus
    /// one table load; cold states binary-search their edges and follow
    /// failure links, which strictly decrease depth and therefore re-enter
    /// the hot tier.
    #[inline]
    pub fn next_state(&self, mut state: u32, byte: u8) -> u32 {
        loop {
            if state < self.hot_count {
                return self.hot[state as usize * self.class_count as usize
                    + self.classes[byte as usize] as usize];
            }
            let c = (state - self.hot_count) as usize;
            let lo = self.edge_start[c] as usize;
            let hi = self.edge_start[c + 1] as usize;
            if let Ok(k) = self.edge_bytes[lo..hi].binary_search(&byte) {
                return self.edge_next[lo + k];
            }
            state = self.fail[c];
        }
    }

    /// True if `state` reports at least one pattern.
    #[inline(always)]
    pub fn is_match_state(&self, state: u32) -> bool {
        self.has_output[state as usize]
    }

    /// Pattern ids ending at `state`.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.outputs[state as usize]
    }

    /// Pattern id of the first match, early-exiting — the fast path's
    /// per-packet scan. Skips benign bytes eight per step while the
    /// automaton would sit at start.
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = Self::START;
            let mut j = c;
            while j < hay.len() {
                state = self.next_state(state, hay[j]);
                j += 1;
                if self.is_match_state(state) {
                    return Some(self.outputs(state)[0]);
                }
                if state == Self::START {
                    break;
                }
            }
            if j >= hay.len() {
                return None;
            }
            i = j;
        }
        None
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = Self::START;
            let mut j = c;
            while j < hay.len() {
                state = self.next_state(state, hay[j]);
                j += 1;
                if self.is_match_state(state) {
                    return Some(Match::new(self.outputs(state)[0], j));
                }
                if state == Self::START {
                    break;
                }
            }
            if j >= hay.len() {
                return None;
            }
            i = j;
        }
        None
    }

    /// Find all matches in `hay` (including overlapping), end offsets
    /// relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = Self::START;
            let mut j = c;
            while j < hay.len() {
                state = self.next_state(state, hay[j]);
                j += 1;
                if self.is_match_state(state) {
                    for &p in self.outputs(state) {
                        out.push(Match::new(p, j));
                    }
                }
                if state == Self::START {
                    break;
                }
            }
            if j >= hay.len() {
                break;
            }
            i = j;
        }
        out
    }

    /// True if any pattern occurs in `hay`.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first_id(hay).is_some()
    }

    /// Heap footprint in bytes: both tiers, outputs, the skip bitmap and
    /// the pattern bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.hot_tier_bytes() + self.cold_tier_bytes();
        total += self.has_output.len();
        for o in &self.outputs {
            total += o.len() * std::mem::size_of::<PatternId>() + std::mem::size_of::<usize>();
        }
        total += self.skip.memory_bytes();
        total += self.set.total_bytes();
        total
    }
}

/// Byte classes and dense rows over the first `hot_count` states of
/// `order`. Classes merge bytes whose *hot* columns agree — `hot_count ×
/// 256` resolved steps, never the full-state-count column scan.
fn build_hot_rows(
    nfa: &AhoCorasick,
    order: &[u32],
    new_of: &[u32],
    hot_count: usize,
) -> (Box<[u8; 256]>, usize, Vec<u32>) {
    let mut columns: Vec<Vec<u32>> = Vec::new();
    let mut class_of: HashMap<Vec<u32>, u8> = HashMap::new();
    let mut classes = Box::new([0u8; 256]);
    for b in 0..=255u8 {
        let col: Vec<u32> = order[..hot_count]
            .iter()
            .map(|&old| new_of[nfa.step(old, b) as usize])
            .collect();
        let next = columns.len() as u8;
        let class = *class_of.entry(col.clone()).or_insert_with(|| {
            columns.push(col);
            next
        });
        classes[b as usize] = class;
    }
    let class_count = columns.len();
    let mut hot = vec![0u32; hot_count * class_count];
    for (c, col) in columns.iter().enumerate() {
        for (s, &target) in col.iter().enumerate() {
            hot[s * class_count + c] = target;
        }
    }
    (classes, class_count, hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::AcDfa;
    use crate::naive;

    fn check(patterns: &[&[u8]], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let dense = AcDfa::new(set.clone());
        for hot in [None, Some(1), Some(2), Some(usize::MAX)] {
            let tiered = TieredNfa::from_nfa(&AhoCorasick::new(set.clone()), hot);
            let mut want = naive::find_all(&set, hay);
            want.sort();
            let mut got = tiered.find_all(hay);
            got.sort();
            assert_eq!(got, want, "tiered(hot={hot:?}) vs naive on {hay:?}");
            assert_eq!(tiered.find_first(hay), dense.find_first(hay), "hot={hot:?}");
            assert_eq!(tiered.find_first_id(hay), dense.find_first_id(hay));
            assert_eq!(tiered.is_match(hay), dense.is_match(hay));
        }
    }

    #[test]
    fn classics_agree_with_dense_and_naive() {
        check(&[b"he", b"she", b"his", b"hers"], b"ushers use hershey");
        check(&[b"aa", b"aaa", b"aaaa"], b"aaaaaa");
        check(
            &[b"GET ", b"POST", b"HEAD"],
            b"GET / HTTP/1.1\r\nHost: POSTofficePOST",
        );
        check(&[b"needle"], b"");
        check(&[b"needle"], b"hay");
        check(&[b"needle"], b"needle");
    }

    #[test]
    fn overlapping_and_shared_prefixes() {
        check(&[b"abcde", b"abcxy", b"bcx"], b"zabcxyabcdez");
        check(&[b"abab", b"baba"], b"ababababab");
        check(&[b"aaaa", b"aaab"], b"aaaaaab");
        check(&[b"she", b"he"], b"..ushers..");
    }

    #[test]
    fn all_256_byte_values() {
        let p: Vec<u8> = vec![0, 127, 255, 1];
        let set = PatternSet::from_patterns([p.clone()]);
        let mut hay: Vec<u8> = (0u8..=255).collect();
        hay.extend_from_slice(&p);
        for hot in [None, Some(1), Some(3)] {
            let tiered = TieredNfa::from_nfa(&AhoCorasick::new(set.clone()), hot);
            assert!(tiered.find_all(&hay).iter().any(|m| m.end == hay.len()));
        }
    }

    #[test]
    fn tier_boundary_sweep_stays_exact() {
        // Every possible hot/cold boundary of a small automaton must
        // recognize the identical match set — the fail chains of cold
        // states cross the boundary at every sweep position.
        let set =
            PatternSet::from_patterns([b"EVIL_SI".as_slice(), b"GNATURE", b"S_BYTES", b"EVIL_XY"]);
        let nfa = AhoCorasick::new(set.clone());
        let dense = AcDfa::new(set.clone());
        let payload = b"EVIL_SIGNATURE_BYTES..EVIL_XY";
        for hot in 1..=nfa.state_count() {
            let tiered = TieredNfa::from_nfa(&nfa, Some(hot));
            assert_eq!(tiered.hot_state_count(), hot);
            assert_eq!(tiered.state_count(), dense.state_count());
            for start in 0..payload.len() {
                for end in start..=payload.len() {
                    let hay = &payload[start..end];
                    assert_eq!(
                        tiered.find_first_id(hay),
                        dense.find_first_id(hay),
                        "hot {hot} on {start}..{end}"
                    );
                }
            }
            let mut a = tiered.find_all(payload);
            let mut d = dense.find_all(payload);
            a.sort();
            d.sort();
            assert_eq!(a, d, "hot {hot}");
        }
    }

    #[test]
    fn extreme_tiers_degenerate_sanely() {
        let set = PatternSet::from_patterns([b"abcdef".as_slice(), b"abzzzz", b"qrstuv"]);
        let nfa = AhoCorasick::new(set.clone());
        let n = nfa.state_count();
        // Only the root hot: everything else is CSR.
        let cold_heavy = TieredNfa::from_nfa(&nfa, Some(1));
        assert_eq!(cold_heavy.hot_state_count(), 1);
        assert_eq!(cold_heavy.cold_state_count(), n - 1);
        // Everything hot: the cold arena is empty.
        let hot_heavy = TieredNfa::from_nfa(&nfa, Some(usize::MAX));
        assert_eq!(hot_heavy.hot_state_count(), n);
        assert_eq!(hot_heavy.cold_tier_bytes(), 4, "just the CSR sentinel");
        for hay in [&b"..abcdef.."[..], b"abzzzz", b"xqrstuvx", b"nothing"] {
            assert_eq!(cold_heavy.find_first_id(hay), hot_heavy.find_first_id(hay));
        }
    }

    #[test]
    fn default_budget_keeps_small_sets_fully_hot() {
        // A demo-scale corpus fits entirely in the hot tier, so the
        // tiered engine degenerates to classed+prefilter behaviour.
        let set = PatternSet::from_patterns([b"ABCDEFGH".as_slice(), b"IJKLMNOP", b"QRSTUVWX"]);
        let tiered = TieredNfa::new(set);
        assert_eq!(tiered.cold_state_count(), 0);
        assert!(tiered.class_count() <= 25, "24 letters + rest");
        assert_eq!(tiered.escape_count(), 3, "A, I, Q");
    }

    #[test]
    fn large_corpus_splits_tiers_and_stays_small() {
        let pats: Vec<Vec<u8>> = (0..500)
            .map(|i| format!("pattern-{i:04}-with-some-tail").into_bytes())
            .collect();
        let set = PatternSet::from_patterns(&pats);
        let dense = AcDfa::new(set.clone());
        let tiered = TieredNfa::new(set.clone());
        assert_eq!(tiered.state_count(), dense.state_count());
        assert!(tiered.hot_state_count() >= MIN_HOT_STATES);
        assert!(
            tiered.cold_state_count() > 0,
            "tail must exist at 500 rules"
        );
        assert!(
            tiered.memory_bytes() * 5 <= dense.memory_bytes(),
            "tiered {} vs dense {}",
            tiered.memory_bytes(),
            dense.memory_bytes()
        );
        // Cross-check a straddling haystack against dense.
        let mut hay = vec![b'.'; 300];
        hay.extend_from_slice(b"pattern-0371-with-some-tail");
        hay.extend(vec![b'.'; 300]);
        let mut a = tiered.find_all(&hay);
        let mut d = dense.find_all(&hay);
        a.sort();
        d.sort();
        assert_eq!(a, d);
    }

    #[test]
    fn tier_bytes_account_the_layout() {
        let set = PatternSet::from_patterns([b"abcdefgh".as_slice(), b"ijklmnop"]);
        let nfa = AhoCorasick::new(set);
        let tiered = TieredNfa::from_nfa(&nfa, Some(4));
        assert_eq!(tiered.hot_tier_bytes(), 256 + 4 * tiered.class_count() * 4);
        assert!(tiered.cold_tier_bytes() > 0);
        assert!(tiered.memory_bytes() > tiered.hot_tier_bytes() + tiered.cold_tier_bytes());
    }

    #[test]
    fn prefilter_skips_but_never_misses() {
        // A long benign run, then a match that starts mid-chunk.
        let set = PatternSet::from_patterns([b"needle".as_slice()]);
        let tiered = TieredNfa::new(set);
        let mut hay = vec![b'.'; 67];
        hay.extend_from_slice(b"needle");
        hay.extend(vec![b'.'; 5]);
        assert_eq!(tiered.find_first_id(&hay), Some(0));
        assert_eq!(tiered.find_first(&hay).unwrap().end, 73);
        // 'n' bytes that enter and fall back must not desync the resume.
        let mut hay = vec![b'n'; 50];
        hay.extend_from_slice(b"needle");
        assert!(tiered.is_match(&hay));
    }
}
