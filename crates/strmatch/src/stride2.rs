//! Two-bytes-per-step DFA.
//!
//! The paper's line-rate argument is ultimately about how many input bytes
//! one memory reference can consume: hardware string matchers widen the
//! transition table so each lookup advances several bytes. This module
//! implements the stride-2 point of that trade-off — one 16-bit-indexed
//! lookup per byte *pair* — over the same Aho–Corasick state machine, as
//! the ablation the `matcher` bench measures.
//!
//! Matches ending at the *middle* of a pair must not be lost, so each pair
//! entry carries a flag: flagged pairs are (rarely) re-stepped through the
//! byte DFA to emit exact matches. The price is the table: `states × 2¹⁶`
//! entries, which is why the constructor enforces an explicit memory
//! budget instead of silently allocating gigabytes — exactly the dimension
//! hardware designers trade against stride.

use crate::dfa::AcDfa;
use crate::pattern::Match;

/// Default construction budget for the pair table (64 MiB).
pub const DEFAULT_MAX_TABLE_BYTES: usize = 64 << 20;

/// Why a stride-2 table could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableTooLarge {
    /// Bytes the pair table would need.
    pub required: usize,
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for TableTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stride-2 table needs {} bytes, budget is {}",
            self.required, self.budget
        )
    }
}

impl std::error::Error for TableTooLarge {}

/// A stride-2 wrapper over [`AcDfa`].
///
/// ```
/// use sd_match::pattern::PatternSet;
/// use sd_match::{AcDfa, Stride2Dfa};
/// let dfa = AcDfa::new(PatternSet::from_patterns([&b"needle"[..]]));
/// let s2 = Stride2Dfa::new(dfa).unwrap();
/// assert_eq!(s2.find_all(b"haystack with a needle in it").len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Stride2Dfa {
    base: AcDfa,
    /// `pair_delta[state * 65536 + (b0 << 8 | b1)]` = state after both bytes.
    pair_delta: Vec<u32>,
    /// True when stepping this pair can produce output (at mid or end).
    pair_flag: Vec<bool>,
}

impl Stride2Dfa {
    /// Build with the default table budget.
    pub fn new(base: AcDfa) -> Result<Self, TableTooLarge> {
        Self::with_budget(base, DEFAULT_MAX_TABLE_BYTES)
    }

    /// Build, refusing if the pair table would exceed `budget` bytes.
    pub fn with_budget(base: AcDfa, budget: usize) -> Result<Self, TableTooLarge> {
        let n = base.state_count();
        let required = n * 65536 * (std::mem::size_of::<u32>() + 1);
        if required > budget {
            return Err(TableTooLarge { required, budget });
        }
        let mut pair_delta = vec![0u32; n * 65536];
        let mut pair_flag = vec![false; n * 65536];
        // mid[s][b0] computed once per state to avoid 256× redundant steps.
        for s in 0..n as u32 {
            for b0 in 0..=255u8 {
                let mid = base.next_state(s, b0);
                let mid_match = base.is_match_state(mid);
                for b1 in 0..=255u8 {
                    let end = base.next_state(mid, b1);
                    let idx = s as usize * 65536 + ((b0 as usize) << 8 | b1 as usize);
                    pair_delta[idx] = end;
                    pair_flag[idx] = mid_match || base.is_match_state(end);
                }
            }
        }
        Ok(Stride2Dfa {
            base,
            pair_delta,
            pair_flag,
        })
    }

    /// The underlying byte DFA.
    pub fn base(&self) -> &AcDfa {
        &self.base
    }

    /// Pair-table memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.pair_delta.len() * std::mem::size_of::<u32>() + self.pair_flag.len()
    }

    /// Find all matches (same results as [`AcDfa::find_all`], including
    /// overlapping ones).
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = AcDfa::START;
        let mut i = 0;
        while i + 1 < hay.len() {
            let idx = state as usize * 65536 + ((hay[i] as usize) << 8 | hay[i + 1] as usize);
            if self.pair_flag[idx] {
                // Slow exact path for the flagged (rare) pair.
                let mid = self.base.next_state(state, hay[i]);
                for &p in self.base.outputs(mid) {
                    out.push(Match::new(p, i + 1));
                }
                let end = self.base.next_state(mid, hay[i + 1]);
                for &p in self.base.outputs(end) {
                    out.push(Match::new(p, i + 2));
                }
                state = end;
            } else {
                state = self.pair_delta[idx];
            }
            i += 2;
        }
        if i < hay.len() {
            state = self.base.next_state(state, hay[i]);
            for &p in self.base.outputs(state) {
                out.push(Match::new(p, i + 1));
            }
        }
        out
    }

    /// True if any pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        let mut state = AcDfa::START;
        let mut i = 0;
        while i + 1 < hay.len() {
            let idx = state as usize * 65536 + ((hay[i] as usize) << 8 | hay[i + 1] as usize);
            if self.pair_flag[idx] {
                return true;
            }
            state = self.pair_delta[idx];
            i += 2;
        }
        if i < hay.len() {
            state = self.base.next_state(state, hay[i]);
            if self.base.is_match_state(state) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    fn dfa(patterns: &[&[u8]]) -> Stride2Dfa {
        Stride2Dfa::new(AcDfa::new(PatternSet::from_patterns(
            patterns.iter().copied(),
        )))
        .unwrap()
    }

    #[test]
    fn matches_at_even_and_odd_offsets() {
        let d = dfa(&[b"abc"]);
        // End offset 3 (odd) starting at 0, and offset 4 (even) starting 1.
        assert_eq!(d.find_all(b"abcabc").len(), 2);
        assert_eq!(d.find_all(b"xabc")[0].end, 4);
        assert_eq!(d.find_all(b"abc")[0].end, 3);
        assert!(d.is_match(b"zzabczz"));
        assert!(!d.is_match(b"zzabzzcz"));
    }

    #[test]
    fn odd_length_haystacks() {
        let d = dfa(&[b"xy"]);
        assert_eq!(d.find_all(b"xxy").len(), 1);
        assert_eq!(d.find_all(b"xxy")[0].end, 3);
        assert_eq!(d.find_all(b"x"), vec![]);
        assert_eq!(d.find_all(b""), vec![]);
    }

    #[test]
    fn agrees_with_byte_dfa_exhaustively() {
        // Small alphabet so collisions/overlaps are dense.
        let patterns: Vec<&[u8]> = vec![b"aba", b"bab", b"aa", b"abba"];
        let d = dfa(&patterns);
        // All strings over {a,b} up to length 10 (2^11 cases): stride-2 and
        // stride-1 must report identical match sets.
        for len in 0..=10usize {
            for bits in 0u32..1 << len {
                let hay: Vec<u8> = (0..len)
                    .map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' })
                    .collect();
                let mut a = d.base().find_all(&hay);
                let mut b = d.find_all(&hay);
                a.sort_by_key(|m| (m.end, m.pattern));
                b.sort_by_key(|m| (m.end, m.pattern));
                assert_eq!(a, b, "divergence on {:?}", String::from_utf8_lossy(&hay));
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let base = AcDfa::new(PatternSet::from_patterns([&b"hello-world-pattern"[..]]));
        let err = Stride2Dfa::with_budget(base, 1024).unwrap_err();
        assert!(err.required > 1024);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn memory_accounting() {
        let d = dfa(&[b"ab"]);
        let states = d.base().state_count();
        assert_eq!(d.memory_bytes(), states * 65536 * 4 + states * 65536);
    }
}
