//! # sd-match — exact string matching engines
//!
//! The Split-Detect fast path scans every packet payload against the set of
//! *pieces* of all signatures; the slow path and the conventional IPS scan
//! reassembled streams against the full signatures. Both reduce to
//! multi-pattern exact matching, implemented here from scratch:
//!
//! * [`aho`] — Aho–Corasick automaton (goto/fail/output construction),
//! * [`dfa`] — a dense byte-indexed DFA compiled from the NFA; this is the
//!   fast-path engine the paper's hardware argument is about (one table
//!   lookup per byte, no failure chains),
//! * [`classed`] — the dense DFA with its 256-byte alphabet compressed to
//!   equivalence classes, shrinking the transition table ~4–10× so real
//!   rule sets stay L1/L2-resident at the same one-lookup-per-byte bound,
//! * [`prefilter`] — a start-state skip prefilter (SWAR `u64` membership
//!   scan, 8 bytes per step in safe Rust) fronting the classed DFA: the
//!   accelerated engine the Split-Detect fast path defaults to,
//! * [`sparse`] — a CSR hybrid NFA-DFA (`O(pattern bytes)` memory instead
//!   of `O(states × 256)`) with an optional Bloom window prefilter before
//!   exact confirm: the representations that keep 10k-rule corpora from
//!   blowing past cache,
//! * [`tiered`] — a two-tier hybrid: dense byte-classed rows for the hot
//!   shallow states (where benign traffic lives), CSR edges for the cold
//!   tail, fronted by the SWAR start-state skip — the engine that closes
//!   the sparse throughput gap at 10k rules without the dense table,
//! * [`bmh`] — Boyer–Moore–Horspool for single patterns (used by tests and
//!   by the naive per-packet baseline when it has one signature),
//! * [`shiftor`] — bit-parallel shift-or for short patterns (≤ 64 bytes;
//!   signature pieces are short, so this is a credible alternative
//!   fast-path engine and appears in the matcher ablation bench),
//! * [`stream`] — a resumable matcher that carries DFA state across chunk
//!   boundaries, reporting absolute stream offsets: what the slow path runs
//!   over reassembled bytes,
//! * [`stride2`] — a two-bytes-per-lookup DFA: the hardware
//!   multi-byte-per-cycle trade-off (throughput vs table width) as a
//!   measurable software ablation,
//! * [`wumanber`] — Wu–Manber bad-block shifting, the era's software IPS
//!   engine: sublinear on small rule sets, degrading as the shift table
//!   fills — the degradation the paper's DFA assumption avoids,
//! * [`naive`] — the obviously-correct quadratic reference all engines are
//!   cross-checked against in unit and property tests.
//!
//! All engines report [`Match`] values identifying the pattern and the
//! *end* offset (one past the last byte), and find **all** occurrences,
//! including overlapping ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho;
pub mod bmh;
pub mod classed;
pub mod dfa;
pub mod naive;
pub mod pattern;
pub mod prefilter;
pub mod shiftor;
pub mod sparse;
pub mod stream;
pub mod stride2;
pub mod tiered;
pub mod wumanber;

pub use aho::AhoCorasick;
pub use classed::ClassedDfa;
pub use dfa::AcDfa;
pub use pattern::{Match, PatternId, PatternSet};
pub use prefilter::{PrefilteredDfa, StartSkip};
pub use sparse::{BloomSparseNfa, SparseNfa, WindowBloom};
pub use stream::StreamMatcher;
pub use stride2::Stride2Dfa;
pub use tiered::TieredNfa;
pub use wumanber::WuManber;
