//! Memory-sparse hybrid NFA-DFA, with an optional Bloom membership
//! prefilter — the representations that survive 10k-rule corpora.
//!
//! The dense DFA ([`crate::dfa::AcDfa`]) spends `states × 256 × 4` bytes; at
//! 10k Snort-class rules the piece trie has hundreds of thousands of states
//! and the table blows past every cache level (~hundreds of MB). The classed
//! table ([`crate::classed::ClassedDfa`]) compresses columns, but byte
//! equivalence classes collapse toward the full alphabet as pattern
//! diversity grows, so it scales the same way — just with a smaller
//! constant.
//!
//! [`SparseNfa`] keeps the automaton in CSR (compressed sparse row) form:
//! each state stores only its real trie edges (sorted byte keys + next
//! states) plus a failure link, and the root keeps one dense 256-entry row
//! so deep failure chains never loop at the bottom. A trie over N pattern
//! bytes has at most N edges, so memory is `O(pattern bytes)` — a few MB at
//! 10k rules, two orders of magnitude under the dense table — at the cost
//! of a failure-chain walk per miss (amortized O(1) per input byte, the
//! classic Aho–Corasick bound).
//!
//! [`BloomSparseNfa`] fronts the sparse walk with a Bloom filter over the
//! first `w` bytes of every pattern (`w = min(8, shortest pattern)`): the
//! scan loop slides a `w`-byte window and only enters the automaton at
//! positions whose window *might* start a pattern. Bloom filters have no
//! false negatives, so every real match start is a candidate; false
//! positives only cost a wasted automaton entry. Whenever the walk falls
//! back to the start state the window scan resumes — identical in structure
//! (and in its exactness argument) to [`crate::prefilter::PrefilteredDfa`],
//! which fronts the classed DFA with a start-state byte-set skip. This is
//! the software form of the Bloom-prefilter-then-exact-confirm design from
//! the NID signature-matching literature.

use crate::aho::AhoCorasick;
use crate::pattern::{Match, PatternId, PatternSet};

/// Aho–Corasick automaton in compressed-sparse-row form.
///
/// Transitions out of each state are stored as parallel sorted arrays
/// (`edge_bytes`/`edge_next`) indexed by a per-state offset table, plus a
/// failure link per state. The root row is kept dense (1 KB) so the common
/// "no prefix in progress" case is one load, and failure chains terminate in
/// one step instead of looping byte-map lookups at state 0.
#[derive(Debug, Clone)]
pub struct SparseNfa {
    /// CSR offsets: state `s` owns edges `edge_start[s] .. edge_start[s+1]`.
    edge_start: Vec<u32>,
    /// Sorted byte labels, per state.
    edge_bytes: Vec<u8>,
    /// Next state per edge, parallel to `edge_bytes`.
    edge_next: Vec<u32>,
    /// Failure link per state (root fails to itself).
    fail: Vec<u32>,
    /// Dense, failure-resolved transition row for the root state.
    root: Box<[u32; 256]>,
    /// Pattern ids ending at each state (failure-chain outputs merged).
    outputs: Vec<Box<[PatternId]>>,
    /// Per-state "any output?" flag, checked before touching `outputs`.
    has_output: Vec<bool>,
    set: PatternSet,
}

impl SparseNfa {
    /// The start state.
    pub const START: u32 = 0;

    /// Compile from patterns (builds the NFA internally).
    pub fn new(set: PatternSet) -> Self {
        Self::from_nfa(&AhoCorasick::new(set))
    }

    /// Compile from an existing NFA.
    pub fn from_nfa(nfa: &AhoCorasick) -> Self {
        let n = nfa.state_count();
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edge_bytes = Vec::new();
        let mut edge_next = Vec::new();
        let mut fail = Vec::with_capacity(n);
        let mut outputs = Vec::with_capacity(n);
        let mut has_output = Vec::with_capacity(n);
        for s in 0..n as u32 {
            edge_start.push(edge_bytes.len() as u32);
            for (b, t) in nfa.transitions(s) {
                edge_bytes.push(b);
                edge_next.push(t);
            }
            fail.push(nfa.fail(s));
            let out = nfa.outputs(s).to_vec().into_boxed_slice();
            has_output.push(!out.is_empty());
            outputs.push(out);
        }
        edge_start.push(edge_bytes.len() as u32);
        let mut root = Box::new([0u32; 256]);
        for b in 0..=255u8 {
            root[b as usize] = nfa.step(0, b);
        }
        SparseNfa {
            edge_start,
            edge_bytes,
            edge_next,
            fail,
            root,
            outputs,
            has_output,
            set: nfa.patterns().clone(),
        }
    }

    /// The pattern set this automaton recognizes.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.fail.len()
    }

    /// Number of stored (trie) edges — at most the total pattern bytes.
    pub fn edge_count(&self) -> usize {
        self.edge_bytes.len()
    }

    /// Distinct bytes with a transition out of the root — the escape
    /// density the adaptive Bloom prefilter keys its on/off decision on.
    pub fn root_escape_count(&self) -> usize {
        (0..=255u8)
            .filter(|&b| self.root[b as usize] != Self::START)
            .count()
    }

    /// One input byte from `state`, following failure links as needed.
    /// Amortized O(1) per scanned byte: the failure chain only descends as
    /// deep as previous bytes ascended.
    #[inline]
    pub fn next_state(&self, mut state: u32, byte: u8) -> u32 {
        loop {
            if state == Self::START {
                return self.root[byte as usize];
            }
            let lo = self.edge_start[state as usize] as usize;
            let hi = self.edge_start[state as usize + 1] as usize;
            if let Ok(k) = self.edge_bytes[lo..hi].binary_search(&byte) {
                return self.edge_next[lo + k];
            }
            state = self.fail[state as usize];
        }
    }

    /// True if `state` reports at least one pattern.
    #[inline(always)]
    pub fn is_match_state(&self, state: u32) -> bool {
        self.has_output[state as usize]
    }

    /// Pattern ids ending at `state`.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.outputs[state as usize]
    }

    /// Find all matches in `hay` with end offsets relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                for &p in self.outputs(state) {
                    out.push(Match::new(p, i + 1));
                }
            }
        }
        out
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut state = Self::START;
        for (i, &b) in hay.iter().enumerate() {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(Match::new(self.outputs(state)[0], i + 1));
            }
        }
        None
    }

    /// Pattern id of the first match, without materializing a [`Match`].
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        let mut state = Self::START;
        for &b in hay {
            state = self.next_state(state, b);
            if self.is_match_state(state) {
                return Some(self.outputs(state)[0]);
            }
        }
        None
    }

    /// True if any pattern occurs in `hay`.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first_id(hay).is_some()
    }

    /// Heap footprint in bytes: `O(pattern bytes)` — edges at 5 bytes each
    /// plus 8 bytes of offset/fail per state and the 1 KB root row.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.edge_bytes.len() + self.edge_next.len() * 4;
        total += self.edge_start.len() * 4 + self.fail.len() * 4;
        total += 256 * 4; // dense root row
        total += self.has_output.len();
        for o in &self.outputs {
            total += o.len() * std::mem::size_of::<PatternId>() + std::mem::size_of::<usize>();
        }
        total += self.set.total_bytes();
        total
    }
}

/// Bloom filter over the leading `window` bytes of every pattern.
///
/// Membership is two bit probes derived from one 64-bit multiply-mix of the
/// little-endian window load. No false negatives by construction; false
/// positives cost one wasted automaton entry each.
#[derive(Debug, Clone)]
pub struct WindowBloom {
    bits: Vec<u64>,
    /// `bit count − 1`; bit count is a power of two.
    mask: u64,
    /// Window width in bytes, `1..=8`.
    window: usize,
}

/// Bits budgeted per distinct pattern window (2 probes → ~1.5% FPR).
const BLOOM_BITS_PER_PATTERN: usize = 16;

impl WindowBloom {
    /// Build over the first `window` bytes of each pattern in `set`.
    /// `window` must be in `1..=8` and no longer than the shortest pattern.
    fn build(set: &PatternSet, window: usize) -> Self {
        debug_assert!((1..=8).contains(&window));
        let n = set.iter().count().max(1);
        let nbits = (n * BLOOM_BITS_PER_PATTERN).next_power_of_two().max(64);
        let mut bloom = WindowBloom {
            bits: vec![0u64; nbits / 64],
            mask: nbits as u64 - 1,
            window,
        };
        for (_, pat) in set.iter() {
            debug_assert!(pat.len() >= window);
            bloom.insert(Self::load(&pat[..window]));
        }
        bloom
    }

    /// Little-endian load of exactly `window` bytes into the low bits.
    #[inline(always)]
    fn load(win: &[u8]) -> u64 {
        let mut x = 0u64;
        for (i, &b) in win.iter().enumerate() {
            x |= (b as u64) << (8 * i);
        }
        x
    }

    /// Two probe positions from one multiply-mix (splitmix64 finalizer).
    #[inline(always)]
    fn probes(&self, x: u64) -> (usize, usize) {
        let mut h = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        ((h & self.mask) as usize, ((h >> 32) & self.mask) as usize)
    }

    fn insert(&mut self, x: u64) {
        let (a, b) = self.probes(x);
        self.bits[a / 64] |= 1 << (a % 64);
        self.bits[b / 64] |= 1 << (b % 64);
    }

    /// True if the window at `win` (exactly `self.window` bytes) may start a
    /// pattern. Never false for a real pattern start.
    #[inline(always)]
    fn maybe_contains(&self, win: &[u8]) -> bool {
        let (a, b) = self.probes(Self::load(win));
        self.bits[a / 64] >> (a % 64) & 1 == 1 && self.bits[b / 64] >> (b % 64) & 1 == 1
    }

    /// Window width in bytes.
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// Filter size in bits.
    pub fn bit_count(&self) -> usize {
        self.bits.len() * 64
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Root escape-byte count at which the window Bloom prefilter engages.
///
/// A root this saturated means nearly every benign byte enters the
/// automaton anyway, so paying a window hash per position buys skipped
/// edge walks; below it, the dense root row already dismisses benign
/// bytes in one load and the Bloom probes are pure overhead (the measured
/// small-corpus regression: sparse+bloom ran ~7× slower than plain
/// sparse). The threshold is build-time and structural — no timing
/// involved — so the decision is deterministic and testable.
pub const BLOOM_MIN_ESCAPE_BYTES: usize = 128;

/// [`SparseNfa`] behind a [`WindowBloom`] membership prefilter.
///
/// The scan slides a `w`-byte window (`w = min(8, shortest pattern)`) and
/// enters the automaton only where the window Bloom-hits; the walk returns
/// to the window scan as soon as the state falls back to start. Exactness:
///
/// * every match start is a Bloom candidate (the filter holds every
///   pattern's leading window, and patterns are at least `w` long);
/// * a candidate at `c` before a real start `s` is harmless — the walk from
///   `c` still crosses `s` and the automaton recognizes suffix-contained
///   occurrences;
/// * resuming the window scan at position `j` where the walk state returned
///   to start cannot skip a match: a pattern in progress at `j` would make
///   the state a nonzero prefix state, not start;
/// * no window fits past `len − w`, and no pattern starting there can
///   complete, so the scan may stop early.
#[derive(Debug, Clone)]
pub struct BloomSparseNfa {
    nfa: SparseNfa,
    bloom: WindowBloom,
    /// Whether the scan loop consults the Bloom at all. Decided once at
    /// build from the root's escape density
    /// ([`BLOOM_MIN_ESCAPE_BYTES`]): when most bytes stay parked at the
    /// dense root row, the per-window probes are a measured net loss and
    /// the scan delegates to the plain sparse walk instead. Structurally
    /// this pins "sparse+bloom is never slower than sparse" on
    /// narrow-alphabet corpora — the two engines run the same code.
    active: bool,
}

impl BloomSparseNfa {
    /// Compile from patterns (builds the NFA internally).
    pub fn new(set: PatternSet) -> Self {
        Self::from_nfa(&AhoCorasick::new(set))
    }

    /// Compile from an existing NFA.
    pub fn from_nfa(nfa: &AhoCorasick) -> Self {
        let window = nfa.patterns().min_len().unwrap_or(1).clamp(1, 8);
        let bloom = WindowBloom::build(nfa.patterns(), window);
        let nfa = SparseNfa::from_nfa(nfa);
        let active = nfa.root_escape_count() >= BLOOM_MIN_ESCAPE_BYTES;
        BloomSparseNfa { nfa, bloom, active }
    }

    /// Whether the Bloom prefilter is consulted during scans (false when
    /// escape density makes it a predicted loss and the engine behaves as
    /// plain sparse).
    pub fn bloom_active(&self) -> bool {
        self.active
    }

    /// The pattern set this automaton recognizes.
    pub fn patterns(&self) -> &PatternSet {
        self.nfa.patterns()
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nfa.state_count()
    }

    /// The underlying sparse automaton.
    pub fn automaton(&self) -> &SparseNfa {
        &self.nfa
    }

    /// The window prefilter.
    pub fn bloom(&self) -> &WindowBloom {
        &self.bloom
    }

    /// Pattern id of the first match (smallest end offset), or `None`.
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        if !self.active {
            return self.nfa.find_first_id(hay);
        }
        let w = self.bloom.window;
        if hay.len() < w {
            // Every pattern is at least w bytes: nothing can match.
            return None;
        }
        let last = hay.len() - w;
        let mut i = 0usize;
        'scan: while i <= last {
            if !self.bloom.maybe_contains(&hay[i..i + w]) {
                i += 1;
                continue;
            }
            // Candidate: exact walk until a match or a fallback to start.
            let mut state = SparseNfa::START;
            let mut j = i;
            while j < hay.len() {
                state = self.nfa.next_state(state, hay[j]);
                j += 1;
                if self.nfa.is_match_state(state) {
                    return Some(self.nfa.outputs(state)[0]);
                }
                if state == SparseNfa::START {
                    i = j;
                    continue 'scan;
                }
            }
            return None;
        }
        None
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        if !self.active {
            return self.nfa.find_first(hay);
        }
        let w = self.bloom.window;
        if hay.len() < w {
            return None;
        }
        let last = hay.len() - w;
        let mut i = 0usize;
        'scan: while i <= last {
            if !self.bloom.maybe_contains(&hay[i..i + w]) {
                i += 1;
                continue;
            }
            let mut state = SparseNfa::START;
            let mut j = i;
            while j < hay.len() {
                state = self.nfa.next_state(state, hay[j]);
                j += 1;
                if self.nfa.is_match_state(state) {
                    return Some(Match::new(self.nfa.outputs(state)[0], j));
                }
                if state == SparseNfa::START {
                    i = j;
                    continue 'scan;
                }
            }
            return None;
        }
        None
    }

    /// Find all matches in `hay` (including overlapping), end offsets
    /// relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        if !self.active {
            return self.nfa.find_all(hay);
        }
        let mut out = Vec::new();
        let w = self.bloom.window;
        if hay.len() < w {
            return out;
        }
        let last = hay.len() - w;
        let mut i = 0usize;
        'scan: while i <= last {
            if !self.bloom.maybe_contains(&hay[i..i + w]) {
                i += 1;
                continue;
            }
            let mut state = SparseNfa::START;
            let mut j = i;
            while j < hay.len() {
                state = self.nfa.next_state(state, hay[j]);
                j += 1;
                if self.nfa.is_match_state(state) {
                    for &p in self.nfa.outputs(state) {
                        out.push(Match::new(p, j));
                    }
                }
                if state == SparseNfa::START {
                    i = j;
                    continue 'scan;
                }
            }
            return out;
        }
        out
    }

    /// True if any pattern occurs in `hay`.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first_id(hay).is_some()
    }

    /// Heap footprint: sparse automaton plus the Bloom bit array.
    pub fn memory_bytes(&self) -> usize {
        self.nfa.memory_bytes() + self.bloom.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::AcDfa;
    use crate::naive;

    fn check(patterns: &[&[u8]], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let dense = AcDfa::new(set.clone());
        let sparse = SparseNfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set.clone());

        let mut want = naive::find_all(&set, hay);
        want.sort();
        let mut got_sparse = sparse.find_all(hay);
        got_sparse.sort();
        assert_eq!(got_sparse, want, "sparse vs naive on {hay:?}");
        let mut got_bloom = bloomed.find_all(hay);
        got_bloom.sort();
        assert_eq!(got_bloom, want, "bloom vs naive on {hay:?}");

        assert_eq!(sparse.find_first(hay), dense.find_first(hay));
        assert_eq!(bloomed.find_first(hay), dense.find_first(hay));
        assert_eq!(sparse.find_first_id(hay), dense.find_first_id(hay));
        assert_eq!(bloomed.find_first_id(hay), dense.find_first_id(hay));
        assert_eq!(sparse.is_match(hay), dense.is_match(hay));
        assert_eq!(bloomed.is_match(hay), dense.is_match(hay));
    }

    #[test]
    fn classics_agree_with_dense_and_naive() {
        check(&[b"he", b"she", b"his", b"hers"], b"ushers use hershey");
        check(&[b"aa", b"aaa", b"aaaa"], b"aaaaaa");
        check(
            &[b"GET ", b"POST", b"HEAD"],
            b"GET / HTTP/1.1\r\nHost: POSTofficePOST",
        );
        check(&[b"needle"], b"");
        check(&[b"needle"], b"hay");
        check(&[b"needle"], b"needle");
    }

    #[test]
    fn overlapping_and_shared_prefixes() {
        check(&[b"abcde", b"abcxy", b"bcx"], b"zabcxyabcdez");
        check(&[b"abab", b"baba"], b"ababababab");
        check(&[b"aaaa", b"aaab"], b"aaaaaab");
    }

    #[test]
    fn all_256_byte_values() {
        let p: Vec<u8> = vec![0, 127, 255, 1];
        let set = PatternSet::from_patterns([p.clone()]);
        let sparse = SparseNfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set);
        let mut hay: Vec<u8> = (0u8..=255).collect();
        hay.extend_from_slice(&p);
        assert!(sparse.find_all(&hay).iter().any(|m| m.end == hay.len()));
        assert!(bloomed.find_all(&hay).iter().any(|m| m.end == hay.len()));
    }

    #[test]
    fn window_clamps_to_eight_bytes() {
        // Shortest pattern longer than 8: the window is 8 and matching is
        // still exact.
        let set = PatternSet::from_patterns([b"0123456789AB".as_slice(), b"XYZXYZXYZXYZ"]);
        let bloomed = BloomSparseNfa::new(set);
        assert_eq!(bloomed.bloom().window_len(), 8);
        assert_eq!(bloomed.find_first_id(b"..0123456789AB.."), Some(0));
        assert_eq!(bloomed.find_first_id(b"..0123456789A"), None);
    }

    #[test]
    fn single_byte_window() {
        let set = PatternSet::from_patterns([b"x".as_slice(), b"yz"]);
        let bloomed = BloomSparseNfa::new(set);
        assert_eq!(bloomed.bloom().window_len(), 1);
        assert_eq!(bloomed.find_first_id(b"aaxaa"), Some(0));
        assert_eq!(bloomed.find_first_id(b"ayza"), Some(1));
        assert_eq!(bloomed.find_first_id(b"abc"), None);
    }

    #[test]
    fn hay_shorter_than_window() {
        let set = PatternSet::from_patterns([b"abcdef".as_slice()]);
        let bloomed = BloomSparseNfa::new(set);
        assert_eq!(bloomed.find_first_id(b"abc"), None);
        assert!(bloomed.find_all(b"abc").is_empty());
        assert!(!bloomed.is_match(b""));
    }

    #[test]
    fn resume_after_fallback_catches_straddling_match() {
        // The walk from the first candidate falls back to start, and the
        // real match begins inside the region the walk already covered a
        // prefix of — the resume-at-start logic must still find it.
        let set = PatternSet::from_patterns([b"abcd".as_slice(), b"cdxy"]);
        let bloomed = BloomSparseNfa::new(set.clone());
        let dense = AcDfa::new(set);
        let hay = b"abcxabcdxy";
        assert_eq!(bloomed.find_first_id(hay), dense.find_first_id(hay));
        let mut a = bloomed.find_all(hay);
        let mut d = dense.find_all(hay);
        a.sort();
        d.sort();
        assert_eq!(a, d);
    }

    #[test]
    fn first_match_is_earliest_end() {
        let set = PatternSet::from_patterns([b"bcde".as_slice(), b"abcd"]);
        let bloomed = BloomSparseNfa::new(set);
        // Both match; "abcd" ends first.
        assert_eq!(bloomed.find_first(b"zabcdez").unwrap().pattern, 1);
    }

    #[test]
    fn sparse_is_much_smaller_than_dense() {
        let pats: Vec<Vec<u8>> = (0..200)
            .map(|i| format!("pattern-{i:04}-with-some-tail").into_bytes())
            .collect();
        let set = PatternSet::from_patterns(&pats);
        let dense = AcDfa::new(set.clone());
        let sparse = SparseNfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set);
        assert!(
            sparse.memory_bytes() * 10 <= dense.memory_bytes(),
            "sparse {} vs dense {}",
            sparse.memory_bytes(),
            dense.memory_bytes()
        );
        assert!(bloomed.memory_bytes() * 10 <= dense.memory_bytes());
        assert_eq!(sparse.state_count(), dense.state_count());
    }

    #[test]
    fn edge_count_bounded_by_pattern_bytes() {
        let set = PatternSet::from_patterns([b"abcde".as_slice(), b"abcxy", b"zzz"]);
        let total: usize = set.iter().map(|(_, p)| p.len()).sum();
        let sparse = SparseNfa::new(set);
        assert!(sparse.edge_count() <= total);
        // Shared prefixes dedup edges: abc is stored once.
        assert_eq!(sparse.edge_count(), 10);
    }

    #[test]
    fn chunk_boundary_straddling_first_match() {
        // Pieces split across arbitrary scan positions must still be found
        // from a whole-buffer scan wherever they start.
        let set = PatternSet::from_patterns([b"EVIL_SI".as_slice(), b"GNATURE", b"S_BYTES"]);
        let dense = AcDfa::new(set.clone());
        let sparse = SparseNfa::new(set.clone());
        let bloomed = BloomSparseNfa::new(set);
        let payload = b"EVIL_SIGNATURE_BYTES";
        for start in 0..payload.len() {
            for end in start..=payload.len() {
                let hay = &payload[start..end];
                assert_eq!(sparse.find_first_id(hay), dense.find_first_id(hay));
                assert_eq!(bloomed.find_first_id(hay), dense.find_first_id(hay));
            }
        }
    }

    #[test]
    fn bloom_self_disables_on_narrow_alphabets() {
        // A demo-scale corpus: few escape bytes, so the prefilter is a
        // predicted loss and the engine must behave as plain sparse (the
        // pinned fix for the measured small-corpus regression).
        let set = PatternSet::from_patterns([b"ABCDEFGH".as_slice(), b"IJKLMNOP", b"QRSTUVWX"]);
        let bloomed = BloomSparseNfa::new(set.clone());
        assert!(bloomed.automaton().root_escape_count() < BLOOM_MIN_ESCAPE_BYTES);
        assert!(!bloomed.bloom_active());
        // The filter is still built (geometry reporting keeps working)…
        assert!(bloomed.bloom().bit_count() >= 64);
        // …and results are identical to plain sparse on every probe.
        let sparse = SparseNfa::new(set);
        for hay in [&b"..ABCDEFGH.."[..], b"IJKLMNO", b"zzzz", b""] {
            assert_eq!(bloomed.find_first_id(hay), sparse.find_first_id(hay));
            assert_eq!(bloomed.find_all(hay), sparse.find_all(hay));
        }
    }

    #[test]
    fn bloom_engages_on_saturated_roots() {
        // 10k-rule-style corpora saturate the root's escape set; the
        // filter must switch on there (that is where it measured a win).
        let pats: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b, b'x', b'y', b'z']).collect();
        let bloomed = BloomSparseNfa::new(PatternSet::from_patterns(&pats));
        assert_eq!(bloomed.automaton().root_escape_count(), 256);
        assert!(bloomed.bloom_active());
        assert_eq!(bloomed.find_first_id(b"..Qxyz.."), Some(b'Q' as u32));
    }

    #[test]
    fn bloom_reports_sane_geometry() {
        let set = PatternSet::from_patterns([b"abcd".as_slice(), b"wxyz"]);
        let bloomed = BloomSparseNfa::new(set);
        let bloom = bloomed.bloom();
        assert!(bloom.bit_count().is_power_of_two());
        assert!(bloom.bit_count() >= 64);
        assert_eq!(bloom.memory_bytes(), bloom.bit_count() / 8);
        assert_eq!(bloom.window_len(), 4);
    }
}
