//! Streaming matching across chunk boundaries.
//!
//! The slow path and the conventional IPS receive a reassembled TCP stream
//! as a sequence of in-order byte chunks and must find signatures that
//! straddle chunk boundaries. [`StreamMatcher`] carries the DFA state (4
//! bytes) and the absolute stream offset (8 bytes) between chunks — this
//! 12-byte figure is exactly the "matcher state" component of the
//! conventional IPS per-connection cost in experiment E2.
//!
//! The DFA itself is shared across all flows and passed by reference to
//! every call, so per-flow state stays minimal.

use crate::dfa::AcDfa;
use crate::pattern::PatternId;

/// A match found in a stream: `pattern` ends at absolute stream offset
/// `end` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamMatch {
    /// Absolute end offset in the stream, one past the last byte.
    pub end: u64,
    /// Which pattern matched.
    pub pattern: PatternId,
}

/// Resumable per-flow matcher state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamMatcher {
    state: u32,
    offset: u64,
}

impl StreamMatcher {
    /// Fresh matcher at stream offset 0 in the DFA start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absolute offset of the next byte to be fed.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reset to offset 0, start state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Re-anchor onto a *new* DFA mid-stream: replay the last `tail`
    /// delivered bytes (a window of `longest pattern − 1` bytes suffices)
    /// through the fresh automaton with match reporting suppressed — those
    /// bytes were already scanned under the retired rules — and resume at
    /// absolute stream offset `offset`. An occurrence straddling the rule
    /// swap still completes once its remaining bytes are fed.
    pub fn resume(dfa: &AcDfa, tail: &[u8], offset: u64) -> Self {
        let mut state = 0u32;
        for &b in tail {
            state = dfa.next_state(state, b);
        }
        StreamMatcher { state, offset }
    }

    /// Feed one in-order chunk, appending any matches to `out`.
    pub fn feed(&mut self, dfa: &AcDfa, chunk: &[u8], out: &mut Vec<StreamMatch>) {
        let mut state = self.state;
        let base = self.offset;
        for (i, &b) in chunk.iter().enumerate() {
            state = dfa.next_state(state, b);
            if dfa.is_match_state(state) {
                for &p in dfa.outputs(state) {
                    out.push(StreamMatch {
                        end: base + i as u64 + 1,
                        pattern: p,
                    });
                }
            }
        }
        self.state = state;
        self.offset = base + chunk.len() as u64;
    }

    /// Feed a chunk, returning true as soon as *any* pattern matches (the
    /// chunk is still consumed in full so the offset stays consistent).
    pub fn feed_any(&mut self, dfa: &AcDfa, chunk: &[u8]) -> bool {
        let mut hit = false;
        let mut state = self.state;
        for &b in chunk {
            state = dfa.next_state(state, b);
            hit |= dfa.is_match_state(state);
        }
        self.state = state;
        self.offset += chunk.len() as u64;
        hit
    }

    /// Size of the per-flow state in bytes (used by state accounting).
    pub const STATE_BYTES: usize = 12;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    fn dfa(patterns: &[&str]) -> AcDfa {
        AcDfa::new(PatternSet::from_patterns(patterns))
    }

    #[test]
    fn match_across_chunk_boundary() {
        let d = dfa(&["attack"]);
        let mut m = StreamMatcher::new();
        let mut out = Vec::new();
        m.feed(&d, b"xxatt", &mut out);
        assert!(out.is_empty());
        m.feed(&d, b"ackyy", &mut out);
        assert_eq!(out, vec![StreamMatch { end: 8, pattern: 0 }]);
        assert_eq!(m.offset(), 10);
    }

    #[test]
    fn byte_at_a_time_equals_batch() {
        let d = dfa(&["abab", "ba"]);
        let hay = b"abababab";
        let mut batch = Vec::new();
        StreamMatcher::new().feed(&d, hay, &mut batch);

        let mut m = StreamMatcher::new();
        let mut single = Vec::new();
        for &b in hay {
            m.feed(&d, &[b], &mut single);
        }
        assert_eq!(batch, single);
        // And against the non-streaming DFA result.
        let direct: Vec<StreamMatch> = d
            .find_all(hay)
            .into_iter()
            .map(|mm| StreamMatch {
                end: mm.end as u64,
                pattern: mm.pattern,
            })
            .collect();
        assert_eq!(batch, direct);
    }

    #[test]
    fn random_chunking_equals_batch() {
        let d = dfa(&["he", "she", "hers", "his"]);
        let hay = b"ushers and his shed with hershey";
        let mut batch = Vec::new();
        StreamMatcher::new().feed(&d, hay, &mut batch);
        // Several fixed chunkings.
        for sizes in [
            [1usize, 30, 1].as_slice(),
            &[3, 3, 3, 3, 3, 17],
            &[32],
            &[5, 27],
        ] {
            let mut m = StreamMatcher::new();
            let mut out = Vec::new();
            let mut pos = 0;
            for &s in sizes {
                let end = (pos + s).min(hay.len());
                m.feed(&d, &hay[pos..end], &mut out);
                pos = end;
            }
            assert!(pos >= hay.len());
            assert_eq!(out, batch, "chunk sizes {sizes:?}");
        }
    }

    #[test]
    fn feed_any_detects_and_advances() {
        let d = dfa(&["evil"]);
        let mut m = StreamMatcher::new();
        assert!(!m.feed_any(&d, b"ev"));
        assert!(m.feed_any(&d, b"il and more"));
        assert_eq!(m.offset(), 13);
        // Still matches again later.
        assert!(m.feed_any(&d, b"evil"));
    }

    #[test]
    fn resume_carries_tail_context_without_reporting_it() {
        let d = dfa(&["attack"]);
        // Pretend "xxatt" was already delivered (offset 5) when the rules
        // swapped: resume replays the tail silently, then the second half
        // completes the straddling match at the correct absolute offset.
        let mut m = StreamMatcher::resume(&d, b"xxatt", 5);
        assert_eq!(m.offset(), 5);
        let mut out = Vec::new();
        m.feed(&d, b"ackyy", &mut out);
        assert_eq!(out, vec![StreamMatch { end: 8, pattern: 0 }]);
        // A whole occurrence inside the tail is NOT re-reported.
        let mut m2 = StreamMatcher::resume(&d, b"attack", 6);
        let mut out2 = Vec::new();
        m2.feed(&d, b"benign", &mut out2);
        assert!(out2.is_empty(), "tail bytes were already scanned");
    }

    #[test]
    fn reset_clears_offset_and_state() {
        let d = dfa(&["ab"]);
        let mut m = StreamMatcher::new();
        let mut out = Vec::new();
        m.feed(&d, b"a", &mut out);
        m.reset();
        m.feed(&d, b"b", &mut out);
        assert!(out.is_empty(), "reset must forget the pending 'a'");
        assert_eq!(m.offset(), 1);
    }
}
