//! Start-state skip prefilter + the prefiltered scanning engine.
//!
//! Almost all traffic is benign and a benign payload mostly keeps an
//! Aho–Corasick DFA parked in its start state — yet the dense scan still
//! pays a serial, load-latency-bound table lookup for every byte. The only
//! bytes that matter while parked are the ones with a transition *out* of
//! the start state (the first bytes of pattern prefixes). [`StartSkip`]
//! precomputes that escape set and scans eight bytes per step in safe Rust:
//!
//! * **general path** — one `u64` load per chunk, then a branch-free
//!   256-bit-bitmap membership test per lane, OR-ed into a single per-chunk
//!   branch. The eight tests are independent (full ILP), unlike the DFA's
//!   chain of dependent loads.
//! * **rare path** (≤ 3 escape bytes) — the classic SWAR zero-byte trick
//!   (`memchr` without `memchr`): XOR with a splatted byte value turns
//!   occurrences into zero lanes, and `(x - 0x01…) & !x & 0x80…` flags
//!   them; three ALU ops per value per chunk, no per-lane work at all.
//!
//! [`PrefilteredDfa`] couples the skipper with a [`ClassedDfa`]: it skips
//! while the automaton would sit in the start state, enters the DFA at the
//! first candidate byte, and drops back to skipping whenever the walk
//! returns to start. Skipped bytes provably keep the DFA at start (that is
//! the definition of the escape set) and the start state never reports a
//! match (empty patterns are rejected at [`PatternSet`] construction), so
//! the match set is byte-identical to the dense scan on every input — the
//! cross-check property tests in `tests/prop.rs` pin this. Worst-case cost
//! is unchanged: adversarial bytes degrade to the plain one-lookup-per-byte
//! DFA walk plus a bounded prefilter tax.

use crate::classed::ClassedDfa;
use crate::pattern::{Match, PatternId, PatternSet};

/// Escape sets at most this large use the splatted-byte SWAR path.
const RARE_MAX: usize = 3;

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// The set of bytes with a transition out of the DFA start state, with an
/// 8-bytes-per-step candidate search.
#[derive(Debug, Clone)]
pub struct StartSkip {
    /// 256-bit membership bitmap, bit `b` of word `b / 64`.
    bitmap: [u64; 4],
    /// The escape bytes themselves when few enough for the splatted-byte
    /// path; empty means "use the bitmap path".
    rare: Vec<u8>,
    escape_count: usize,
}

impl StartSkip {
    /// Build from the bytes that leave `dfa`'s start state.
    pub fn for_dfa(dfa: &ClassedDfa) -> Self {
        Self::from_escape_bytes(
            (0u8..=255).filter(|&b| dfa.next_state(ClassedDfa::START, b) != ClassedDfa::START),
        )
    }

    /// Build from an explicit escape-byte set.
    pub fn from_escape_bytes(bytes: impl IntoIterator<Item = u8>) -> Self {
        let mut bitmap = [0u64; 4];
        let mut escapes: Vec<u8> = Vec::new();
        for b in bytes {
            if bitmap[(b >> 6) as usize] & (1 << (b & 63)) == 0 {
                bitmap[(b >> 6) as usize] |= 1 << (b & 63);
                escapes.push(b);
            }
        }
        let escape_count = escapes.len();
        let rare = if escape_count <= RARE_MAX {
            escapes
        } else {
            Vec::new()
        };
        StartSkip {
            bitmap,
            rare,
            escape_count,
        }
    }

    /// Number of distinct escape bytes.
    pub fn escape_count(&self) -> usize {
        self.escape_count
    }

    /// Whether the splatted-byte rare path is active.
    pub fn is_rare(&self) -> bool {
        !self.rare.is_empty() || self.escape_count == 0
    }

    /// Membership test for a single byte.
    #[inline(always)]
    pub fn contains(&self, b: u8) -> bool {
        (self.bitmap[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }

    /// Index of the first escape byte at or after `from`, scanning eight
    /// bytes per step.
    #[inline]
    pub fn find_candidate(&self, hay: &[u8], from: usize) -> Option<usize> {
        let mut i = from.min(hay.len());
        if self.rare.is_empty() {
            while i + 8 <= hay.len() {
                let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
                let mut hits = 0u32;
                for lane in 0..8 {
                    let b = ((w >> (lane * 8)) & 0xff) as usize;
                    let bit = (self.bitmap[b >> 6] >> (b & 63)) & 1;
                    hits |= (bit as u32) << lane;
                }
                if hits != 0 {
                    return Some(i + hits.trailing_zeros() as usize);
                }
                i += 8;
            }
        } else {
            while i + 8 <= hay.len() {
                let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
                let mut flagged = 0u64;
                for &v in &self.rare {
                    let x = w ^ (SWAR_LO * u64::from(v));
                    flagged |= x.wrapping_sub(SWAR_LO) & !x & SWAR_HI;
                }
                if flagged != 0 {
                    // The lowest flagged lane is the exact first hit, but a
                    // per-byte confirm keeps correctness independent of the
                    // bit trick: scan the chunk from that lane and fall
                    // through (soundly) if nothing confirms.
                    let lane = (flagged.trailing_zeros() / 8) as usize;
                    for (off, &b) in hay[i + lane..i + 8].iter().enumerate() {
                        if self.contains(b) {
                            return Some(i + lane + off);
                        }
                    }
                }
                i += 8;
            }
        }
        hay[i..]
            .iter()
            .position(|&b| self.contains(b))
            .map(|off| i + off)
    }

    /// Footprint in bytes (the bitmap plus the rare list).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<[u64; 4]>() + self.rare.len()
    }
}

/// A [`ClassedDfa`] fronted by a [`StartSkip`] prefilter.
#[derive(Debug, Clone)]
pub struct PrefilteredDfa {
    dfa: ClassedDfa,
    skip: StartSkip,
}

impl PrefilteredDfa {
    /// Compile from patterns.
    pub fn new(set: PatternSet) -> Self {
        Self::from_classed(ClassedDfa::new(set))
    }

    /// Wrap an already-compiled classed DFA.
    pub fn from_classed(dfa: ClassedDfa) -> Self {
        let skip = StartSkip::for_dfa(&dfa);
        PrefilteredDfa { dfa, skip }
    }

    /// The wrapped automaton.
    pub fn dfa(&self) -> &ClassedDfa {
        &self.dfa
    }

    /// The start-state escape set.
    pub fn skip(&self) -> &StartSkip {
        &self.skip
    }

    /// The pattern set this engine recognizes.
    pub fn patterns(&self) -> &PatternSet {
        self.dfa.patterns()
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.dfa.state_count()
    }

    /// Number of byte equivalence classes.
    pub fn class_count(&self) -> usize {
        self.dfa.class_count()
    }

    /// Number of bytes that leave the start state.
    pub fn escape_count(&self) -> usize {
        self.skip.escape_count()
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.dfa.memory_bytes() + self.skip.memory_bytes()
    }

    /// Pattern id of the first match, early-exiting — the fast path's
    /// per-packet scan.
    #[inline]
    pub fn find_first_id(&self, hay: &[u8]) -> Option<PatternId> {
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = ClassedDfa::START;
            let mut j = c;
            while j < hay.len() {
                state = self.dfa.next_state(state, hay[j]);
                j += 1;
                if self.dfa.is_match_state(state) {
                    return Some(self.dfa.outputs(state)[0]);
                }
                if state == ClassedDfa::START {
                    break;
                }
            }
            if j >= hay.len() {
                return None;
            }
            i = j;
        }
        None
    }

    /// True if any pattern occurs in `hay`.
    #[inline]
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first_id(hay).is_some()
    }

    /// First match in `hay`.
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = ClassedDfa::START;
            let mut j = c;
            while j < hay.len() {
                state = self.dfa.next_state(state, hay[j]);
                j += 1;
                if self.dfa.is_match_state(state) {
                    return Some(Match::new(self.dfa.outputs(state)[0], j));
                }
                if state == ClassedDfa::START {
                    break;
                }
            }
            if j >= hay.len() {
                return None;
            }
            i = j;
        }
        None
    }

    /// Find all matches in `hay` with end offsets relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(c) = self.skip.find_candidate(hay, i) {
            let mut state = ClassedDfa::START;
            let mut j = c;
            while j < hay.len() {
                state = self.dfa.next_state(state, hay[j]);
                j += 1;
                if self.dfa.is_match_state(state) {
                    for &p in self.dfa.outputs(state) {
                        out.push(Match::new(p, j));
                    }
                }
                if state == ClassedDfa::START {
                    break;
                }
            }
            if j >= hay.len() {
                break;
            }
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::AcDfa;
    use crate::naive;

    fn check(patterns: &[&[u8]], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let pre = PrefilteredDfa::new(set.clone());
        let mut got = pre.find_all(hay);
        let mut want = naive::find_all(&set, hay);
        got.sort();
        want.sort();
        assert_eq!(got, want, "patterns {patterns:?} hay {hay:?}");
        assert_eq!(pre.is_match(hay), !want.is_empty());
        let dense = AcDfa::new(set);
        assert_eq!(pre.find_first(hay), dense.find_first(hay));
    }

    #[test]
    fn skip_set_is_exactly_the_escape_bytes() {
        let pre = PrefilteredDfa::new(PatternSet::from_patterns([b"GET".as_slice(), b"_tail"]));
        // Escape bytes: 'G' and '_' (and nothing else — 'E', 'T' only
        // matter after a 'G').
        assert_eq!(pre.escape_count(), 2);
        assert!(pre.skip().contains(b'G'));
        assert!(pre.skip().contains(b'_'));
        assert!(!pre.skip().contains(b'E'));
        assert!(pre.skip().is_rare());
    }

    #[test]
    fn rare_and_general_paths_agree() {
        // 2 escape bytes → rare path; 5 → general path. Same candidates.
        let rare = StartSkip::from_escape_bytes([b'x', b'Q']);
        let general = StartSkip::from_escape_bytes([b'x', b'Q', 1, 2, 3]);
        assert!(rare.is_rare());
        assert!(!general.is_rare());
        let hay: Vec<u8> = (0..100u8)
            .map(|i| if i % 37 == 0 { b'Q' } else { b'.' })
            .collect();
        for from in 0..hay.len() + 2 {
            assert_eq!(
                rare.find_candidate(&hay, from),
                general.find_candidate(&hay, from),
                "from {from}"
            );
        }
    }

    #[test]
    fn candidates_at_every_offset() {
        // Sweep the candidate across all 8 chunk lanes, plus the tail.
        let skip = StartSkip::from_escape_bytes([0xEE]);
        for len in 0..24usize {
            for at in 0..len {
                let mut hay = vec![0x20u8; len];
                hay[at] = 0xEE;
                assert_eq!(skip.find_candidate(&hay, 0), Some(at), "len {len} at {at}");
                assert_eq!(skip.find_candidate(&hay, at + 1), None);
            }
        }
        assert_eq!(skip.find_candidate(&[], 0), None);
        assert_eq!(skip.find_candidate(&[0u8; 9], 99), None);
    }

    #[test]
    fn agrees_with_naive_on_classics() {
        check(&[b"he", b"she", b"his", b"hers"], b"ushers use hershey");
        check(&[b"aa", b"aaa", b"aaaa"], b"aaaaaa");
        check(
            &[b"GET", b"POST", b"HEAD"],
            b"GET / HTTP/1.1\r\nHost: POSTofficePOST",
        );
    }

    #[test]
    fn matches_straddling_chunk_boundaries() {
        // Pattern starts at offset 6 and crosses the first 8-byte chunk.
        let mut hay = vec![b'.'; 6];
        hay.extend_from_slice(b"needle");
        hay.extend_from_slice(&[b'.'; 3]);
        check(&[b"needle"], &hay);
        // Payload ends mid-chunk, match in the tail.
        check(&[b"ab"], b"0123456789ab");
        // Candidate in the last lane of a chunk.
        check(&[b"xy"], b"0123456xy");
    }

    #[test]
    fn resumes_skipping_after_failed_candidates() {
        // Lots of 'n's that enter the DFA and immediately fall back to
        // start; the real match is at the very end.
        let mut hay = vec![b'n'; 50];
        hay.extend_from_slice(b"needle");
        check(&[b"needle"], &hay);
    }

    #[test]
    fn overlapping_outputs_inside_one_dfa_entry() {
        // After entering at 'u', the walk reports she+he at the same
        // position without returning to start in between.
        check(&[b"she", b"he"], b"..ushers..");
    }

    #[test]
    fn all_256_byte_values() {
        let p: Vec<u8> = vec![0, 127, 255];
        let set = PatternSet::from_patterns([p.clone()]);
        let pre = PrefilteredDfa::new(set);
        let mut hay: Vec<u8> = (0u8..=255).collect();
        hay.extend_from_slice(&p);
        let ms = pre.find_all(&hay);
        assert!(ms.iter().any(|m| m.end == hay.len()));
    }

    #[test]
    fn memory_includes_dfa_and_skip() {
        let pre = PrefilteredDfa::new(PatternSet::from_patterns(["needle"]));
        assert!(pre.memory_bytes() > pre.dfa().memory_bytes());
        // {n, e, d, l} plus the catch-all class.
        assert_eq!(pre.class_count(), 5);
    }
}
