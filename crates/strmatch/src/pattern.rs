//! Pattern sets and match records shared by every engine.

use core::fmt;

/// Identifies a pattern by its insertion order within a [`PatternSet`].
pub type PatternId = u32;

/// A reported occurrence: pattern `pattern` ends at byte offset `end`
/// (exclusive) of the haystack; it starts at `end - len(pattern)`.
///
/// Engines report the *end* because streaming matchers know the end the
/// moment the last byte arrives, while the start may lie in an earlier,
/// already-discarded chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    /// End offset, one past the last matched byte.
    pub end: usize,
    /// Which pattern matched.
    pub pattern: PatternId,
}

impl Match {
    /// Convenience constructor.
    pub fn new(pattern: PatternId, end: usize) -> Self {
        Match { end, pattern }
    }

    /// Start offset within the same haystack, given the pattern set.
    pub fn start(&self, set: &PatternSet) -> usize {
        self.end - set.pattern(self.pattern).len()
    }
}

/// An ordered collection of non-empty byte patterns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternSet {
    patterns: Vec<Vec<u8>>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of byte strings. Panics on empty patterns —
    /// an empty signature piece is a configuration error upstream, not a
    /// runtime condition.
    pub fn from_patterns<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut set = Self::new();
        for p in patterns {
            set.add(p.as_ref());
        }
        set
    }

    /// Append a pattern, returning its id.
    pub fn add(&mut self, pattern: &[u8]) -> PatternId {
        assert!(!pattern.is_empty(), "empty patterns are not allowed");
        let id = self.patterns.len() as PatternId;
        self.patterns.push(pattern.to_vec());
        id
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The bytes of pattern `id`.
    pub fn pattern(&self, id: PatternId) -> &[u8] {
        &self.patterns[id as usize]
    }

    /// Iterate `(id, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &[u8])> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (i as PatternId, p.as_slice()))
    }

    /// Total bytes across all patterns.
    pub fn total_bytes(&self) -> usize {
        self.patterns.iter().map(Vec::len).sum()
    }

    /// Length of the shortest pattern (None if empty).
    pub fn min_len(&self) -> Option<usize> {
        self.patterns.iter().map(Vec::len).min()
    }

    /// Length of the longest pattern (None if empty).
    pub fn max_len(&self) -> Option<usize> {
        self.patterns.iter().map(Vec::len).max()
    }
}

impl fmt::Display for PatternSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PatternSet({} patterns, {} bytes)",
            self.len(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_insertion_order() {
        let mut set = PatternSet::new();
        assert_eq!(set.add(b"abc"), 0);
        assert_eq!(set.add(b"de"), 1);
        assert_eq!(set.pattern(0), b"abc");
        assert_eq!(set.pattern(1), b"de");
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bytes(), 5);
        assert_eq!(set.min_len(), Some(2));
        assert_eq!(set.max_len(), Some(3));
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn empty_pattern_rejected() {
        PatternSet::new().add(b"");
    }

    #[test]
    fn match_start_derives_from_end() {
        let set = PatternSet::from_patterns(["hello"]);
        let m = Match::new(0, 9);
        assert_eq!(m.start(&set), 4);
    }

    #[test]
    fn duplicates_get_distinct_ids() {
        let set = PatternSet::from_patterns(["xy", "xy"]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.pattern(0), set.pattern(1));
    }

    #[test]
    fn display_summarizes() {
        let set = PatternSet::from_patterns(["abc", "d"]);
        assert_eq!(set.to_string(), "PatternSet(2 patterns, 4 bytes)");
    }
}
