//! Boyer–Moore–Horspool single-pattern search.
//!
//! Sublinear on average thanks to the bad-character skip table. Used by the
//! naive per-packet IPS baseline when configured with a single signature,
//! and as a second implementation to cross-check the automata.

/// A compiled single-pattern Horspool searcher.
#[derive(Debug, Clone)]
pub struct Horspool {
    pattern: Vec<u8>,
    /// For each byte value, how far the window may shift when the window's
    /// last byte is that value and no match was found.
    skip: [usize; 256],
}

impl Horspool {
    /// Compile a non-empty pattern.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "empty patterns are not allowed");
        let m = pattern.len();
        let mut skip = [m; 256];
        for (i, &b) in pattern[..m - 1].iter().enumerate() {
            skip[b as usize] = m - 1 - i;
        }
        Horspool {
            pattern: pattern.to_vec(),
            skip,
        }
    }

    /// The pattern bytes.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Offset of the first occurrence in `hay`, if any.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        let m = self.pattern.len();
        if hay.len() < m {
            return None;
        }
        let mut i = 0usize;
        while i + m <= hay.len() {
            if &hay[i..i + m] == self.pattern.as_slice() {
                return Some(i);
            }
            i += self.skip[hay[i + m - 1] as usize];
        }
        None
    }

    /// All (possibly overlapping) occurrence start offsets.
    pub fn find_all(&self, hay: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut base = 0usize;
        while let Some(pos) = self.find(&hay[base..]) {
            out.push(base + pos);
            base += pos + 1; // step one byte to allow overlaps
            if base > hay.len() {
                break;
            }
        }
        out
    }

    /// True if the pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find(hay).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_first() {
        let h = Horspool::new(b"needle");
        assert_eq!(h.find(b"haystack with a needle inside"), Some(16));
        assert_eq!(h.find(b"no such thing"), None);
        assert_eq!(h.find(b""), None);
        assert_eq!(h.find(b"needl"), None);
        assert_eq!(h.find(b"needle"), Some(0));
    }

    #[test]
    fn finds_all_overlapping() {
        let h = Horspool::new(b"aa");
        assert_eq!(h.find_all(b"aaaa"), vec![0, 1, 2]);
        let h = Horspool::new(b"abab");
        assert_eq!(h.find_all(b"abababab"), vec![0, 2, 4]);
    }

    #[test]
    fn repeated_trailing_byte() {
        // The classic Horspool pitfall: last pattern byte also earlier in
        // the pattern.
        let h = Horspool::new(b"abcab");
        assert_eq!(h.find(b"ababcabcab"), Some(2));
        assert_eq!(h.find_all(b"abcababcab"), vec![0, 5]);
    }

    #[test]
    fn single_byte_pattern() {
        let h = Horspool::new(b"x");
        assert_eq!(h.find_all(b"axbxc"), vec![1, 3]);
    }

    #[test]
    fn binary_pattern() {
        let pat = [0u8, 255, 0];
        let h = Horspool::new(&pat);
        let hay = [255u8, 0, 255, 0, 0, 255, 0];
        assert_eq!(h.find(&hay), Some(1));
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn rejects_empty() {
        Horspool::new(b"");
    }
}
