//! Aho–Corasick automaton: classic goto/failure/output construction.
//!
//! This is the NFA form: transitions are sparse, and a search may follow a
//! chain of failure links per input byte. The fast path compiles it to a
//! dense DFA ([`crate::dfa::AcDfa`]) where every byte is exactly one table
//! lookup — the property the paper's 20 Gbps hardware argument rests on.

use crate::pattern::{Match, PatternId, PatternSet};
use std::collections::{BTreeMap, VecDeque};

/// One NFA state.
#[derive(Debug, Clone, Default)]
struct State {
    /// Sparse goto transitions.
    next: BTreeMap<u8, u32>,
    /// Failure link (root fails to itself).
    fail: u32,
    /// Patterns ending at this state, including those inherited along the
    /// failure chain (merged during construction so search never walks the
    /// chain to report outputs).
    out: Vec<PatternId>,
}

/// An Aho–Corasick automaton over a [`PatternSet`].
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    states: Vec<State>,
    set: PatternSet,
}

impl AhoCorasick {
    /// Build the automaton. Takes ownership of the set so matches can be
    /// related back to pattern bytes.
    pub fn new(set: PatternSet) -> Self {
        let mut states = vec![State::default()]; // root = 0

        // Phase 1: trie of all patterns.
        for (id, pat) in set.iter() {
            let mut cur = 0u32;
            for &b in pat {
                cur = match states[cur as usize].next.get(&b) {
                    Some(&s) => s,
                    None => {
                        let s = states.len() as u32;
                        states.push(State::default());
                        states[cur as usize].next.insert(b, s);
                        s
                    }
                };
            }
            states[cur as usize].out.push(id);
        }

        // Phase 2: failure links by BFS; merge outputs.
        let mut queue = VecDeque::new();
        let root_children: Vec<u32> = states[0].next.values().copied().collect();
        for s in root_children {
            states[s as usize].fail = 0;
            queue.push_back(s);
        }
        while let Some(s) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> = states[s as usize]
                .next
                .iter()
                .map(|(&b, &t)| (b, t))
                .collect();
            for (b, t) in transitions {
                // Find the deepest proper suffix state with a b-transition.
                let mut f = states[s as usize].fail;
                let fail_t = loop {
                    if let Some(&n) = states[f as usize].next.get(&b) {
                        break n;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = states[f as usize].fail;
                };
                states[t as usize].fail = fail_t;
                let inherited = states[fail_t as usize].out.clone();
                states[t as usize].out.extend(inherited);
                queue.push_back(t);
            }
        }

        AhoCorasick { states, set }
    }

    /// The pattern set this automaton recognizes.
    pub fn patterns(&self) -> &PatternSet {
        &self.set
    }

    /// Number of states (including the root).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Follow one input byte from `state`, taking failure links as needed.
    pub fn step(&self, mut state: u32, byte: u8) -> u32 {
        loop {
            if let Some(&n) = self.states[state as usize].next.get(&byte) {
                return n;
            }
            if state == 0 {
                return 0;
            }
            state = self.states[state as usize].fail;
        }
    }

    /// Patterns ending at `state`.
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.states[state as usize].out
    }

    /// The sorted trie (goto) transitions out of `state`, failure links
    /// unresolved — the raw edges a sparse compilation needs, as opposed to
    /// [`Self::step`] which resolves the failure chain.
    pub fn transitions(&self, state: u32) -> impl Iterator<Item = (u8, u32)> + '_ {
        self.states[state as usize]
            .next
            .iter()
            .map(|(&b, &t)| (b, t))
    }

    /// Failure link of `state` (the root fails to itself).
    pub fn fail(&self, state: u32) -> u32 {
        self.states[state as usize].fail
    }

    /// Find all matches in `hay`, reporting end offsets relative to `hay`.
    pub fn find_all(&self, hay: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &b) in hay.iter().enumerate() {
            state = self.step(state, b);
            for &p in self.outputs(state) {
                out.push(Match::new(p, i + 1));
            }
        }
        out
    }

    /// First match in `hay` (smallest end offset; ties by discovery order).
    pub fn find_first(&self, hay: &[u8]) -> Option<Match> {
        let mut state = 0u32;
        for (i, &b) in hay.iter().enumerate() {
            state = self.step(state, b);
            if let Some(&p) = self.outputs(state).first() {
                return Some(Match::new(p, i + 1));
            }
        }
        None
    }

    /// True if any pattern occurs in `hay`.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find_first(hay).is_some()
    }

    /// Approximate heap footprint in bytes: trie maps, fail links, outputs.
    /// BTreeMap overhead is charged at a flat 24 bytes per entry — the
    /// point of this number is the NFA/DFA comparison in the ablation
    /// bench, not allocator-exact accounting.
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.states.len() * std::mem::size_of::<State>();
        for s in &self.states {
            total += s.next.len() * 24;
            total += s.out.len() * std::mem::size_of::<PatternId>();
        }
        total += self.set.total_bytes();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check(patterns: &[&str], hay: &[u8]) {
        let set = PatternSet::from_patterns(patterns);
        let ac = AhoCorasick::new(set.clone());
        let mut got = ac.find_all(hay);
        let mut want = naive::find_all(&set, hay);
        got.sort();
        want.sort();
        assert_eq!(got, want, "patterns {patterns:?} hay {hay:?}");
    }

    #[test]
    fn textbook_example() {
        // The classic {he, she, his, hers} example from the AC paper.
        check(&["he", "she", "his", "hers"], b"ushers");
        let set = PatternSet::from_patterns(["he", "she", "his", "hers"]);
        let ac = AhoCorasick::new(set);
        let ms = ac.find_all(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let pats: Vec<(u32, usize)> = ms.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(pats.contains(&(1, 4)));
        assert!(pats.contains(&(0, 4)));
        assert!(pats.contains(&(3, 6)));
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn overlapping_and_nested() {
        check(&["aa", "aaa"], b"aaaa");
        check(&["a", "ab", "abc", "abcd"], b"abcdabc");
        check(&["abab"], b"abababab");
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(PatternSet::from_patterns(["xyz"]));
        assert!(ac.find_all(b"abcabcabc").is_empty());
        assert!(!ac.is_match(b"abcabcabc"));
        assert!(ac.find_first(b"abc").is_none());
    }

    #[test]
    fn binary_patterns() {
        let p1: &[u8] = &[0x00, 0xff, 0x00];
        let p2: &[u8] = &[0xff, 0x00];
        let set = PatternSet::from_patterns([p1, p2]);
        let hay = [0x00, 0xff, 0x00, 0xff, 0x00];
        let ac = AhoCorasick::new(set.clone());
        let mut got = ac.find_all(&hay);
        let mut want = naive::find_all(&set, &hay);
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn find_first_is_earliest_end() {
        let ac = AhoCorasick::new(PatternSet::from_patterns(["bcd", "ab"]));
        let m = ac.find_first(b"abcd").unwrap();
        assert_eq!(m, Match::new(1, 2));
    }

    #[test]
    fn single_byte_patterns() {
        check(&["a", "b"], b"abba");
    }

    #[test]
    fn shared_prefixes_share_states() {
        let ac = AhoCorasick::new(PatternSet::from_patterns(["abcde", "abcxy"]));
        // root + abc (3) + de (2) + xy (2) = 8 states.
        assert_eq!(ac.state_count(), 8);
    }

    #[test]
    fn pattern_equal_to_haystack() {
        check(&["entire"], b"entire");
    }

    #[test]
    fn memory_reported_nonzero() {
        let ac = AhoCorasick::new(PatternSet::from_patterns(["abc"]));
        assert!(ac.memory_bytes() > 0);
    }
}
