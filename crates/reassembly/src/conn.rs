//! Bidirectional TCP connection reassembly.
//!
//! Pairs two [`TcpStreamReassembler`]s under one connection, routing parsed
//! segments by [`Direction`], tracking the coarse connection lifecycle the
//! baseline IPS needs for state reclamation, and summing state for the
//! memory experiments.

use sd_flow::Direction;
use sd_packet::tcp::TcpRepr;

use crate::policy::OverlapPolicy;
use crate::stream::{PushSummary, TcpStreamReassembler};
use crate::urgent::UrgentSemantics;

/// Coarse connection lifecycle, enough for an IPS to reclaim state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Seen traffic; no FIN/RST yet.
    Established,
    /// At least one direction has sent FIN.
    Closing,
    /// Both directions finished, or an RST was seen.
    Closed,
}

/// Both directions of one TCP connection.
#[derive(Debug, Clone)]
pub struct Connection {
    forward: TcpStreamReassembler,
    backward: TcpStreamReassembler,
    urgent: UrgentSemantics,
}

impl Connection {
    /// New connection; both directions share the overlap policy. Urgent
    /// octets follow the default ([`UrgentSemantics::DiscardOne`]) — set
    /// the protected hosts' behaviour with
    /// [`with_urgent`](Self::with_urgent).
    pub fn new(policy: OverlapPolicy) -> Self {
        Connection {
            forward: TcpStreamReassembler::new(policy),
            backward: TcpStreamReassembler::new(policy),
            urgent: UrgentSemantics::default(),
        }
    }

    /// New connection with an explicit per-direction buffer cap.
    pub fn with_limit(policy: OverlapPolicy, limit: usize) -> Self {
        Connection {
            forward: TcpStreamReassembler::with_limit(policy, limit),
            backward: TcpStreamReassembler::with_limit(policy, limit),
            urgent: UrgentSemantics::default(),
        }
    }

    /// Set the urgent-octet delivery semantics (builder-style).
    pub fn with_urgent(mut self, urgent: UrgentSemantics) -> Self {
        self.urgent = urgent;
        self
    }

    /// Process one parsed segment traveling in `dir`.
    ///
    /// Handles SYN/FIN/RST flags and pushes payload into the right stream.
    pub fn on_segment(&mut self, dir: Direction, repr: &TcpRepr, payload: &[u8]) -> PushSummary {
        let stream = self.stream_mut(dir);
        if repr.flags.syn() {
            stream.on_syn(repr.seq);
        }
        if repr.flags.rst() {
            stream.on_rst();
        }
        let data_seq = if repr.flags.syn() {
            repr.seq + 1u32 // SYN occupies one sequence position
        } else {
            repr.seq
        };
        if let Some(skip) = self.urgent.discarded_seq(repr, data_seq, payload.len()) {
            self.stream_mut(dir).skip_at(skip);
        }
        let stream = self.stream_mut(dir);
        let summary = stream.push(data_seq, payload);
        if repr.flags.fin() {
            let fin_seq = data_seq + payload.len();
            self.stream_mut(dir).on_fin(fin_seq);
        }
        summary
    }

    /// The reassembler for one direction.
    pub fn stream(&self, dir: Direction) -> &TcpStreamReassembler {
        match dir {
            Direction::Forward => &self.forward,
            Direction::Backward => &self.backward,
        }
    }

    /// Mutable access to one direction.
    pub fn stream_mut(&mut self, dir: Direction) -> &mut TcpStreamReassembler {
        match dir {
            Direction::Forward => &mut self.forward,
            Direction::Backward => &mut self.backward,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        if self.forward.is_reset() || self.backward.is_reset() {
            return ConnState::Closed;
        }
        match (self.forward.is_finished(), self.backward.is_finished()) {
            (true, true) => ConnState::Closed,
            (false, false) => ConnState::Established,
            _ => ConnState::Closing,
        }
    }

    /// Total state footprint of both directions.
    pub fn memory_bytes(&self) -> usize {
        self.forward.memory_bytes() + self.backward.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::tcp::TcpFlags;
    use sd_packet::SeqNumber;

    fn seg(seq: u32, flags: TcpFlags) -> TcpRepr {
        TcpRepr {
            src_port: 1000,
            dst_port: 80,
            seq: SeqNumber(seq),
            ack: SeqNumber(0),
            flags,
            window: 65535,
            urgent: 0,
        }
    }

    #[test]
    fn syn_consumes_sequence_position() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        c.on_segment(Direction::Forward, &seg(101, TcpFlags::ACK), b"data");
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"data");
    }

    #[test]
    fn directions_are_independent() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        c.on_segment(Direction::Backward, &seg(500, TcpFlags::SYN), b"");
        c.on_segment(Direction::Forward, &seg(101, TcpFlags::ACK), b"req");
        c.on_segment(Direction::Backward, &seg(501, TcpFlags::ACK), b"resp");
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"req");
        assert_eq!(c.stream_mut(Direction::Backward).drain(), b"resp");
    }

    #[test]
    fn lifecycle_transitions() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        assert_eq!(c.state(), ConnState::Established);
        c.on_segment(
            Direction::Forward,
            &seg(101, TcpFlags::FIN.union(TcpFlags::ACK)),
            b"",
        );
        assert_eq!(c.state(), ConnState::Closing);
        c.on_segment(Direction::Backward, &seg(900, TcpFlags::SYN), b"");
        c.on_segment(
            Direction::Backward,
            &seg(901, TcpFlags::FIN.union(TcpFlags::ACK)),
            b"",
        );
        assert_eq!(c.state(), ConnState::Closed);
    }

    #[test]
    fn rst_closes_immediately() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        c.on_segment(Direction::Backward, &seg(1, TcpFlags::RST), b"");
        assert_eq!(c.state(), ConnState::Closed);
    }

    #[test]
    fn fin_with_payload_marks_end_after_data() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        c.on_segment(
            Direction::Forward,
            &seg(101, TcpFlags::FIN.union(TcpFlags::PSH)),
            b"last",
        );
        let s = c.stream_mut(Direction::Forward);
        assert_eq!(s.drain(), b"last");
        assert!(s.is_finished());
    }

    #[test]
    fn urgent_octet_discarded_under_discard_semantics() {
        let mut c = Connection::new(OverlapPolicy::First); // default: DiscardOne
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        let mut urg = seg(101, TcpFlags::ACK.union(TcpFlags::URG));
        urg.urgent = 3; // third payload byte is urgent
        c.on_segment(Direction::Forward, &urg, b"ab!cd");
        assert_eq!(
            c.stream_mut(Direction::Forward).drain(),
            b"abcd",
            "the urgent octet must not reach the application stream"
        );
        // Sequence accounting still includes it: the next segment starts
        // at 101 + 5.
        c.on_segment(Direction::Forward, &seg(106, TcpFlags::ACK), b"ef");
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"ef");
    }

    #[test]
    fn urgent_octet_kept_inline() {
        let mut c = Connection::new(OverlapPolicy::First)
            .with_urgent(crate::urgent::UrgentSemantics::Inline);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        let mut urg = seg(101, TcpFlags::ACK.union(TcpFlags::URG));
        urg.urgent = 3;
        c.on_segment(Direction::Forward, &urg, b"ab!cd");
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"ab!cd");
    }

    #[test]
    fn urgent_in_buffered_out_of_order_segment() {
        let mut c = Connection::new(OverlapPolicy::First);
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        // Out-of-order urgent segment buffers first; discard must still
        // apply when it finally delivers.
        let mut urg = seg(105, TcpFlags::ACK.union(TcpFlags::URG));
        urg.urgent = 1;
        c.on_segment(Direction::Forward, &urg, b"!yz");
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"");
        c.on_segment(
            Direction::Forward,
            &seg(101, TcpFlags::ACK),
            b"wxyz"[..4].as_ref(),
        );
        assert_eq!(c.stream_mut(Direction::Forward).drain(), b"wxyzyz");
    }

    #[test]
    fn memory_sums_both_directions() {
        let mut c = Connection::new(OverlapPolicy::First);
        let base = c.memory_bytes();
        // Create a gap so bytes stay buffered.
        c.on_segment(Direction::Forward, &seg(100, TcpFlags::SYN), b"");
        c.on_segment(Direction::Forward, &seg(200, TcpFlags::ACK), b"buffered");
        assert!(c.memory_bytes() > base);
    }
}
