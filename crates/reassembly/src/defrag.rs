//! IPv4 fragment reassembly.
//!
//! Fragments are keyed by (src, dst, protocol, ident) per RFC 791. The
//! defragmenter collects fragments until the hole list is empty, then paints
//! the datagram in arrival order under an [`OverlapPolicy`] — fragment
//! overlaps are just as policy-dependent as TCP overlaps (the teardrop /
//! overlapping-fragment family of evasions), so the slow path and the victim
//! model both need the knob.
//!
//! Resource discipline: contexts are bounded in number and in bytes; stale
//! contexts expire after [`Defragmenter::timeout`] logical ticks (the caller
//! supplies a tick, usually the packet index — a line-rate box cannot afford
//! wall-clock syscalls per packet). Every limit hit is counted, never silent.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use sd_packet::ipv4::{Ipv4Packet, Protocol};
use sd_packet::{Error, Result};

use crate::policy::OverlapPolicy;

/// Default maximum concurrent reassembly contexts.
pub const DEFAULT_MAX_CONTEXTS: usize = 1024;
/// Default timeout in ticks after which an incomplete context is dropped.
pub const DEFAULT_TIMEOUT: u64 = 10_000;
/// Per-context fixed overhead charged by memory accounting.
pub const CONTEXT_OVERHEAD_BYTES: usize = 48;

/// Reassembly context key per RFC 791.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Protocol number.
    pub proto: u8,
    /// IP identification field.
    pub ident: u16,
}

#[derive(Debug, Clone)]
struct Piece {
    offset: usize,
    data: Vec<u8>,
}

#[derive(Debug, Clone)]
struct Context {
    pieces: Vec<Piece>,
    /// Total payload length, known once the MF=0 fragment arrives.
    total_len: Option<usize>,
    /// Header bytes of the offset-0 fragment (template for the reassembled
    /// datagram).
    first_header: Option<Vec<u8>>,
    bytes: usize,
    last_tick: u64,
}

impl Context {
    fn new(tick: u64) -> Self {
        Context {
            pieces: Vec::new(),
            total_len: None,
            first_header: None,
            bytes: 0,
            last_tick: tick,
        }
    }

    fn memory_bytes(&self) -> usize {
        CONTEXT_OVERHEAD_BYTES
            + self.bytes
            + self.first_header.as_ref().map_or(0, |h| h.len())
            + self.pieces.len() * 16
    }

    fn is_complete(&self) -> bool {
        let Some(total) = self.total_len else {
            return false;
        };
        // Hole check: sort piece intervals and walk.
        let mut intervals: Vec<(usize, usize)> = self
            .pieces
            .iter()
            .map(|p| (p.offset, p.offset + p.data.len()))
            .collect();
        intervals.sort_unstable();
        let mut covered = 0usize;
        for (s, e) in intervals {
            if s > covered {
                return false;
            }
            covered = covered.max(e);
        }
        covered >= total
    }

    /// Paint the payload in arrival order under `policy`.
    fn assemble(&self, policy: OverlapPolicy) -> Vec<u8> {
        let total = self.total_len.expect("assemble requires known length");
        let mut out = vec![0u8; total];
        // writer[i] = offset of the fragment that wrote byte i, or MAX if
        // unwritten.
        let mut writer = vec![usize::MAX; total];
        for p in &self.pieces {
            for (i, &b) in p.data.iter().enumerate() {
                let pos = p.offset + i;
                if pos >= total {
                    break;
                }
                if writer[pos] == usize::MAX || policy.new_wins(writer[pos] as u64, p.offset as u64)
                {
                    out[pos] = b;
                    writer[pos] = p.offset;
                }
            }
        }
        out
    }
}

/// Counters for the defragmenter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Fragments accepted.
    pub fragments: u64,
    /// Datagrams completed.
    pub completed: u64,
    /// Contexts dropped on timeout.
    pub timeouts: u64,
    /// Contexts evicted at the context limit.
    pub evicted: u64,
    /// Fragments rejected (malformed / oversized / inconsistent length).
    pub rejected: u64,
}

/// Outcome of offering one packet to the defragmenter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefragResult {
    /// Not a fragment: process the caller's original buffer (no copy).
    PassThrough,
    /// A fragment was absorbed; the datagram is still incomplete.
    Absorbed,
    /// The final fragment arrived: the reassembled datagram.
    Complete(Vec<u8>),
}

/// IPv4 defragmenter with bounded state.
#[derive(Debug, Clone)]
pub struct Defragmenter {
    policy: OverlapPolicy,
    contexts: HashMap<FragKey, Context>,
    max_contexts: usize,
    timeout: u64,
    stats: DefragStats,
}

impl Defragmenter {
    /// New defragmenter with the given overlap policy and default limits.
    pub fn new(policy: OverlapPolicy) -> Self {
        Self::with_limits(policy, DEFAULT_MAX_CONTEXTS, DEFAULT_TIMEOUT)
    }

    /// New defragmenter with explicit context-count and timeout limits.
    pub fn with_limits(policy: OverlapPolicy, max_contexts: usize, timeout: u64) -> Self {
        Defragmenter {
            policy,
            contexts: HashMap::new(),
            max_contexts: max_contexts.max(1),
            timeout,
            stats: DefragStats::default(),
        }
    }

    /// The timeout in ticks.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Live reassembly contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Running counters.
    pub fn stats(&self) -> DefragStats {
        self.stats
    }

    /// Total state footprint across all contexts.
    pub fn memory_bytes(&self) -> usize {
        self.contexts.values().map(|c| c.memory_bytes()).sum()
    }

    /// Offer one IPv4 packet. Non-fragments pass through without copying;
    /// fragments are absorbed and, when a datagram completes, the
    /// reassembled packet is returned.
    ///
    /// `tick` is a monotonic logical clock (packet index works) used for
    /// timeouts.
    pub fn push(&mut self, packet: &[u8], tick: u64) -> Result<DefragResult> {
        self.expire(tick);

        let ip = Ipv4Packet::new_checked(packet)?;
        if !ip.is_fragment() {
            return Ok(DefragResult::PassThrough);
        }

        let key = FragKey {
            src: ip.src_addr(),
            dst: ip.dst_addr(),
            proto: match ip.protocol() {
                Protocol::Tcp => 6,
                Protocol::Udp => 17,
                Protocol::Icmp => 1,
                Protocol::Other(p) => p,
            },
            ident: ip.ident(),
        };

        let offset = ip.frag_offset() as usize;
        let payload = ip.payload();
        let end = offset + payload.len();
        if end > 65_535 {
            self.stats.rejected += 1;
            return Err(Error::Malformed);
        }

        if !self.contexts.contains_key(&key) && self.contexts.len() >= self.max_contexts {
            // Evict the stalest context to stay within bounds.
            if let Some(stale) = self
                .contexts
                .iter()
                .min_by_key(|(_, c)| c.last_tick)
                .map(|(k, _)| *k)
            {
                self.contexts.remove(&stale);
                self.stats.evicted += 1;
            }
        }

        let ctx = self
            .contexts
            .entry(key)
            .or_insert_with(|| Context::new(tick));
        ctx.last_tick = tick;

        if !ip.more_frags() {
            // Last fragment pins the total length; inconsistent repeats are
            // rejected (a classic confusion attack).
            match ctx.total_len {
                Some(t) if t != end => {
                    self.stats.rejected += 1;
                    self.contexts.remove(&key);
                    return Err(Error::Malformed);
                }
                _ => ctx.total_len = Some(end),
            }
        }
        if offset == 0 {
            let header = &packet[..ip.header_len()];
            ctx.first_header = Some(header.to_vec());
        }

        ctx.pieces.push(Piece {
            offset,
            data: payload.to_vec(),
        });
        ctx.bytes += payload.len();
        self.stats.fragments += 1;

        if ctx.is_complete() && ctx.first_header.is_some() {
            let ctx = self.contexts.remove(&key).expect("context present");
            self.stats.completed += 1;
            let payload = ctx.assemble(self.policy);
            let header = ctx.first_header.expect("checked above");
            let mut out = Vec::with_capacity(header.len() + payload.len());
            out.extend_from_slice(&header);
            out.extend_from_slice(&payload);
            let total = out.len() as u16;
            let mut view = Ipv4Packet::new_unchecked(&mut out[..]);
            view.set_total_len(total);
            view.set_frag_fields(false, false, 0);
            view.fill_checksum();
            return Ok(DefragResult::Complete(out));
        }
        Ok(DefragResult::Absorbed)
    }

    /// [`push`](Self::push) with owned output: `PassThrough` copies the
    /// input. Convenient where the extra copy does not matter (tests,
    /// offline tools); hot paths should match on [`DefragResult`].
    pub fn push_owned(&mut self, packet: &[u8], tick: u64) -> Result<Option<Vec<u8>>> {
        Ok(match self.push(packet, tick)? {
            DefragResult::PassThrough => Some(packet.to_vec()),
            DefragResult::Absorbed => None,
            DefragResult::Complete(v) => Some(v),
        })
    }

    fn expire(&mut self, tick: u64) {
        let timeout = self.timeout;
        let before = self.contexts.len();
        self.contexts
            .retain(|_, c| tick.saturating_sub(c.last_tick) <= timeout);
        self.stats.timeouts += (before - self.contexts.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
    use sd_packet::frag::fragment_ipv4;
    use sd_packet::parse::parse_ipv4;

    fn attack_packet(payload: &[u8]) -> Vec<u8> {
        let frame = TcpPacketSpec::new("10.0.0.1:4000", "10.0.0.2:80")
            .seq(1)
            .payload(payload)
            .dont_frag(false)
            .ident(42)
            .build();
        ip_of_frame(&frame).to_vec()
    }

    #[test]
    fn non_fragment_passes_through() {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        let pkt = attack_packet(b"hello");
        let out = d.push_owned(&pkt, 0).unwrap().unwrap();
        assert_eq!(out, pkt);
        assert_eq!(d.context_count(), 0);
    }

    #[test]
    fn fragments_reassemble_in_order() {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        let pkt = attack_packet(&[0xabu8; 100]);
        let frags = fragment_ipv4(&pkt, 40).unwrap();
        assert!(frags.len() > 1);
        let mut done = None;
        for (i, f) in frags.iter().enumerate() {
            done = d.push_owned(f, i as u64).unwrap();
            if i + 1 < frags.len() {
                assert!(done.is_none());
            }
        }
        let out = done.expect("reassembled");
        let p = parse_ipv4(&out).unwrap();
        assert!(!p.is_fragment());
        let tcp = p.tcp().unwrap();
        assert_eq!(tcp.payload, &[0xabu8; 100][..]);
        assert_eq!(d.context_count(), 0);
        assert_eq!(d.stats().completed, 1);
    }

    #[test]
    fn fragments_reassemble_out_of_order() {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        let pkt = attack_packet(b"the quick brown fox jumps over the lazy dog!");
        let mut frags = fragment_ipv4(&pkt, 16).unwrap();
        frags.reverse();
        let mut done = None;
        for (i, f) in frags.iter().enumerate() {
            done = d.push_owned(f, i as u64).unwrap();
        }
        let out = done.expect("reassembled");
        let p = parse_ipv4(&out).unwrap();
        assert_eq!(
            p.tcp().unwrap().payload,
            b"the quick brown fox jumps over the lazy dog!"
        );
    }

    #[test]
    fn reassembled_packet_has_valid_checksum() {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        let pkt = attack_packet(&[7u8; 64]);
        let frags = fragment_ipv4(&pkt, 24).unwrap();
        let mut done = None;
        for (i, f) in frags.iter().enumerate() {
            done = d.push_owned(f, i as u64).unwrap();
        }
        let out = done.unwrap();
        let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert!(ip.verify_checksum());
        assert!(!ip.more_frags());
        assert_eq!(ip.frag_offset(), 0);
    }

    #[test]
    fn timeout_reclaims_state() {
        let mut d = Defragmenter::with_limits(OverlapPolicy::First, 16, 100);
        let pkt = attack_packet(&[1u8; 64]);
        let frags = fragment_ipv4(&pkt, 24).unwrap();
        d.push_owned(&frags[0], 0).unwrap();
        assert_eq!(d.context_count(), 1);
        assert!(d.memory_bytes() > 0);
        // Push an unrelated packet far in the future.
        let other = attack_packet(b"x");
        d.push_owned(&other, 1000).unwrap();
        assert_eq!(d.context_count(), 0);
        assert_eq!(d.stats().timeouts, 1);
    }

    #[test]
    fn context_limit_evicts_stalest() {
        let mut d = Defragmenter::with_limits(OverlapPolicy::First, 2, u64::MAX);
        for n in 0..3u16 {
            let frame = TcpPacketSpec::new("10.0.0.1:4000", "10.0.0.2:80")
                .payload(&[0u8; 64])
                .dont_frag(false)
                .ident(n)
                .build();
            let frags = fragment_ipv4(ip_of_frame(&frame), 24).unwrap();
            d.push_owned(&frags[0], n as u64).unwrap();
        }
        assert_eq!(d.context_count(), 2);
        assert_eq!(d.stats().evicted, 1);
    }

    #[test]
    fn inconsistent_last_fragment_rejected() {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        let pkt = attack_packet(&[9u8; 120]);
        let frags = fragment_ipv4(&pkt, 48).unwrap();
        let last = frags.last().unwrap().clone();
        d.push_owned(&last, 0).unwrap();
        // Craft a second "last" fragment with a different end.
        let mut fake = last.clone();
        {
            let mut v = Ipv4Packet::new_unchecked(&mut fake[..]);
            let off = v.frag_offset();
            v.set_frag_fields(false, false, off + 8);
            v.fill_checksum();
        }
        assert!(d.push_owned(&fake, 1).is_err());
        assert_eq!(d.stats().rejected, 1);
    }

    #[test]
    fn overlap_policy_decides_conflicting_fragments() {
        // Two overlapping fragments with different content for bytes 8..16.
        // Arrival order: honest first, attacker overlap second.
        let pkt = attack_packet(&[0x41u8; 24]); // payload 'A' x24 after TCP hdr
        let frags = fragment_ipv4(&pkt, 8).unwrap();
        // frags cover the 20-byte TCP header + 24 payload in 8-byte steps.
        // Forge an overlap of frags[1] (offsets 8..16) with different bytes.
        let mut forged = frags[1].clone();
        {
            let mut v = Ipv4Packet::new_unchecked(&mut forged[..]);
            v.payload_mut().fill(0x42);
            v.fill_checksum();
        }
        // The overlapped region 8..16 of the IP payload lies inside the TCP
        // header, so the honest copy is those header bytes, not 0x41.
        let honest_region: Vec<u8> = {
            let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
            ip.payload()[8..16].to_vec()
        };
        for (policy, expect) in [
            (OverlapPolicy::First, honest_region.clone()), // original kept
            (OverlapPolicy::Last, vec![0x42u8; 8]),        // forged wins
        ] {
            // Inject the forged overlap before the final honest fragment so
            // completion happens after both copies are buffered.
            let mut d = Defragmenter::new(policy);
            for (i, f) in frags.iter().enumerate().take(frags.len() - 1) {
                assert!(d.push_owned(f, i as u64).unwrap().is_none());
            }
            let mut done = d.push_owned(&forged, 50).unwrap();
            assert!(done.is_none());
            done = d.push_owned(frags.last().unwrap(), 51).unwrap();
            let out = done.expect("complete");
            // Fragment 1 covers IP-payload bytes 8..16, which lies inside
            // the TCP header region; inspect the raw reassembled payload.
            let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
            let region = &ip.payload()[8..16];
            assert_eq!(region, &expect[..], "policy {policy}");
        }
    }
}
