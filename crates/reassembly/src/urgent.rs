//! Urgent-pointer semantics.
//!
//! RFC 793's urgent mechanism is the most ambiguous corner of TCP: the
//! standard's text and its errata disagree on whether `urg_ptr` points *at*
//! the last urgent octet or one past it, and stacks disagree on whether the
//! urgent octet is delivered inline or consumed out-of-band (discarded from
//! the normal read stream). Ptacek & Newsham weaponized exactly this: mark
//! one chaff byte inside the signature urgent, and an IPS that includes it
//! inline scans a string the victim's application never sees.
//!
//! We model the two behaviours that matter for that evasion. The pointer
//! convention is fixed (`urg_ptr` = offset of the urgent octet within the
//! segment, 1-based — the BSD reading), since the inline/discard split is
//! what the detection logic must get right.

use sd_packet::tcp::TcpRepr;
use sd_packet::SeqNumber;

/// How a stack delivers the urgent octet to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UrgentSemantics {
    /// The urgent octet is discarded from the normal stream (classic BSD
    /// out-of-band delivery; the application reads around it). The default,
    /// because it is the behaviour the evasion targets.
    #[default]
    DiscardOne,
    /// The urgent octet stays in the stream (Linux `SO_OOBINLINE`-style).
    Inline,
}

impl UrgentSemantics {
    /// The sequence number of the octet these semantics would discard, for
    /// a segment with header `repr` whose payload starts at `data_seq` and
    /// is `payload_len` bytes. `None` when nothing is discarded.
    pub fn discarded_seq(
        self,
        repr: &TcpRepr,
        data_seq: SeqNumber,
        payload_len: usize,
    ) -> Option<SeqNumber> {
        if self != UrgentSemantics::DiscardOne || !repr.flags.urg() {
            return None;
        }
        let ptr = repr.urgent as usize;
        if ptr == 0 || ptr > payload_len {
            return None; // pointer outside the segment: ignored
        }
        Some(data_seq + (ptr - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::tcp::TcpFlags;

    fn repr(urg: bool, ptr: u16) -> TcpRepr {
        TcpRepr {
            src_port: 1,
            dst_port: 2,
            seq: SeqNumber(100),
            ack: SeqNumber(0),
            flags: if urg {
                TcpFlags::ACK.union(TcpFlags::URG)
            } else {
                TcpFlags::ACK
            },
            window: 1000,
            urgent: ptr,
        }
    }

    #[test]
    fn discard_points_into_segment() {
        let s = UrgentSemantics::DiscardOne;
        assert_eq!(
            s.discarded_seq(&repr(true, 1), SeqNumber(100), 10),
            Some(SeqNumber(100))
        );
        assert_eq!(
            s.discarded_seq(&repr(true, 10), SeqNumber(100), 10),
            Some(SeqNumber(109))
        );
    }

    #[test]
    fn out_of_range_pointer_ignored() {
        let s = UrgentSemantics::DiscardOne;
        assert_eq!(s.discarded_seq(&repr(true, 0), SeqNumber(100), 10), None);
        assert_eq!(s.discarded_seq(&repr(true, 11), SeqNumber(100), 10), None);
    }

    #[test]
    fn inline_never_discards() {
        let s = UrgentSemantics::Inline;
        assert_eq!(s.discarded_seq(&repr(true, 1), SeqNumber(100), 10), None);
    }

    #[test]
    fn no_urg_flag_no_discard() {
        let s = UrgentSemantics::DiscardOne;
        assert_eq!(s.discarded_seq(&repr(false, 1), SeqNumber(100), 10), None);
    }
}
