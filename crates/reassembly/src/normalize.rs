//! Packet-level normalization.
//!
//! A conventional IPS must see *the same bytes the victim's stack accepts*.
//! FragRoute-style chaff exploits every disagreement: segments with bad
//! checksums (victim drops, naive IPS scans), low-TTL packets (reach the IPS
//! but expire before the victim), impossible flag combinations, and
//! malformed headers. The normalizer makes the drop decisions a consistent
//! middlebox makes, and counts every one — the processing-cost experiments
//! charge the baseline for this per-packet work.

use std::fmt;
use std::net::Ipv4Addr;

use sd_packet::ipv4::{Ipv4Packet, Protocol};
use sd_packet::parse::{parse_ipv4, Transport};
use sd_packet::tcp::TcpSegment;
use sd_packet::udp::UdpDatagram;

/// Why a packet was dropped (or that it was accepted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet is consistent; process it.
    Accept,
    /// Headers failed to parse.
    Malformed,
    /// IP header checksum wrong.
    BadIpChecksum,
    /// TCP/UDP checksum wrong (classic chaff-insertion signature).
    BadL4Checksum,
    /// TTL below the configured floor (TTL-expiry evasion chaff).
    LowTtl,
    /// Impossible TCP flag combination (SYN+FIN, SYN+RST, null).
    BadFlags,
    /// IP source-route option (loose or strict): the packet's *path* is
    /// attacker-controlled, so the IPS cannot know whether the nominal
    /// destination ever receives it — classic evasion surface, dropped by
    /// every deployed normalizer.
    SourceRoute,
}

impl Verdict {
    /// True when the packet should be processed further.
    pub fn accepted(self) -> bool {
        self == Verdict::Accept
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Accept => "accept",
            Verdict::Malformed => "malformed",
            Verdict::BadIpChecksum => "bad-ip-checksum",
            Verdict::BadL4Checksum => "bad-l4-checksum",
            Verdict::LowTtl => "low-ttl",
            Verdict::BadFlags => "bad-flags",
            Verdict::SourceRoute => "source-route",
        };
        f.write_str(s)
    }
}

/// Normalizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct NormalizerConfig {
    /// Verify the IP header checksum.
    pub verify_ip_checksum: bool,
    /// Verify TCP/UDP checksums (requires touching every payload byte —
    /// this is part of why normalization is expensive).
    pub verify_l4_checksum: bool,
    /// Drop packets whose TTL is below this floor (0 disables). A deployed
    /// IPS sets this to the distance to the protected hosts.
    pub min_ttl: u8,
    /// Drop impossible TCP flag combinations.
    pub drop_bad_flags: bool,
    /// Drop packets carrying IP source-route options (LSRR/SSRR).
    pub drop_source_route: bool,
}

impl Default for NormalizerConfig {
    fn default() -> Self {
        NormalizerConfig {
            verify_ip_checksum: true,
            verify_l4_checksum: true,
            min_ttl: 4,
            drop_bad_flags: true,
            drop_source_route: true,
        }
    }
}

/// Drop counters, one per [`Verdict`] reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizerStats {
    /// Packets accepted.
    pub accepted: u64,
    /// Malformed headers.
    pub malformed: u64,
    /// Bad IP checksums.
    pub bad_ip_checksum: u64,
    /// Bad L4 checksums.
    pub bad_l4_checksum: u64,
    /// TTL floor drops.
    pub low_ttl: u64,
    /// Impossible flags.
    pub bad_flags: u64,
    /// Source-routed packets.
    pub source_route: u64,
    /// Payload bytes touched by checksum verification (processing cost).
    pub bytes_touched: u64,
}

impl NormalizerStats {
    /// Total packets dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.malformed
            + self.bad_ip_checksum
            + self.bad_l4_checksum
            + self.low_ttl
            + self.bad_flags
            + self.source_route
    }
}

/// Stateless per-packet normalizer with counters.
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    config: NormalizerConfig,
    stats: NormalizerStats,
}

impl Normalizer {
    /// Normalizer with the default (strict) configuration.
    pub fn new() -> Self {
        Self::with_config(NormalizerConfig::default())
    }

    /// Normalizer with an explicit configuration.
    pub fn with_config(config: NormalizerConfig) -> Self {
        Normalizer {
            config,
            stats: NormalizerStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> NormalizerConfig {
        self.config
    }

    /// Running counters.
    pub fn stats(&self) -> NormalizerStats {
        self.stats
    }

    /// Judge one IPv4 packet (no Ethernet header).
    pub fn check_ipv4(&mut self, packet: &[u8]) -> Verdict {
        let v = self.judge(packet);
        match v {
            Verdict::Accept => self.stats.accepted += 1,
            Verdict::Malformed => self.stats.malformed += 1,
            Verdict::BadIpChecksum => self.stats.bad_ip_checksum += 1,
            Verdict::BadL4Checksum => self.stats.bad_l4_checksum += 1,
            Verdict::LowTtl => self.stats.low_ttl += 1,
            Verdict::BadFlags => self.stats.bad_flags += 1,
            Verdict::SourceRoute => self.stats.source_route += 1,
        }
        v
    }

    fn judge(&mut self, packet: &[u8]) -> Verdict {
        let Ok(ip) = Ipv4Packet::new_checked(packet) else {
            return Verdict::Malformed;
        };
        if self.config.verify_ip_checksum {
            self.stats.bytes_touched += ip.header_len() as u64;
            if !ip.verify_checksum() {
                return Verdict::BadIpChecksum;
            }
        }
        if self.config.min_ttl > 0 && ip.ttl() < self.config.min_ttl {
            return Verdict::LowTtl;
        }
        if self.config.drop_source_route && has_source_route(ip.options()) {
            return Verdict::SourceRoute;
        }
        // Fragments cannot have their L4 checksum verified in isolation;
        // flag checks only apply to the first fragment's header if present.
        // A consistent normalizer defers those checks to post-reassembly, so
        // here fragments pass (the defragmenter re-checks the whole).
        if ip.is_fragment() {
            return Verdict::Accept;
        }
        let Ok(parsed) = parse_ipv4(packet) else {
            return Verdict::Malformed;
        };
        match parsed.transport {
            Transport::Tcp(info) => {
                if self.config.drop_bad_flags {
                    let f = info.repr.flags;
                    let impossible = (f.syn() && f.fin())
                        || (f.syn() && f.rst())
                        || (!f.syn() && !f.fin() && !f.rst() && !f.ack() && !f.psh() && !f.urg());
                    if impossible {
                        return Verdict::BadFlags;
                    }
                }
                if self.config.verify_l4_checksum {
                    let (src, dst) = (ip.src_addr(), ip.dst_addr());
                    if !self.verify_tcp(packet, &ip, src, dst) {
                        return Verdict::BadL4Checksum;
                    }
                }
                Verdict::Accept
            }
            Transport::Udp(_) => {
                if self.config.verify_l4_checksum {
                    let (src, dst) = (ip.src_addr(), ip.dst_addr());
                    if !self.verify_udp(packet, &ip, src, dst) {
                        return Verdict::BadL4Checksum;
                    }
                }
                Verdict::Accept
            }
            _ => Verdict::Accept,
        }
    }

    fn verify_tcp(
        &mut self,
        packet: &[u8],
        ip: &Ipv4Packet<&[u8]>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> bool {
        if ip.protocol() != Protocol::Tcp {
            return true;
        }
        let payload = &packet[ip.header_len()..ip.total_len() as usize];
        self.stats.bytes_touched += payload.len() as u64;
        match TcpSegment::new_checked(payload) {
            Ok(seg) => seg.verify_checksum(src, dst),
            Err(_) => false,
        }
    }

    fn verify_udp(
        &mut self,
        packet: &[u8],
        ip: &Ipv4Packet<&[u8]>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> bool {
        let payload = &packet[ip.header_len()..ip.total_len() as usize];
        self.stats.bytes_touched += payload.len() as u64;
        match UdpDatagram::new_checked(payload) {
            Ok(dg) => dg.verify_checksum(src, dst),
            Err(_) => false,
        }
    }
}

/// Walk IPv4 options looking for loose (131) or strict (137) source
/// routing. Malformed option lists are treated as source-routed — refusing
/// to parse garbage conservatively is what a normalizer is for.
fn has_source_route(mut opts: &[u8]) -> bool {
    while let Some(&kind) = opts.first() {
        match kind {
            0 => return false,      // EOOL
            1 => opts = &opts[1..], // NOP
            131 | 137 => return true,
            _ => {
                let Some(&len) = opts.get(1) else { return true };
                if len < 2 || len as usize > opts.len() {
                    return true;
                }
                opts = &opts[len as usize..];
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec, UdpPacketSpec};
    use sd_packet::frag::fragment_ipv4;
    use sd_packet::tcp::TcpFlags;

    fn tcp_ip(payload: &[u8]) -> Vec<u8> {
        let frame = TcpPacketSpec::new("10.0.0.1:1234", "10.0.0.2:80")
            .payload(payload)
            .build();
        ip_of_frame(&frame).to_vec()
    }

    #[test]
    fn clean_packet_accepted() {
        let mut n = Normalizer::new();
        assert_eq!(n.check_ipv4(&tcp_ip(b"hello")), Verdict::Accept);
        assert_eq!(n.stats().accepted, 1);
        assert!(n.stats().bytes_touched > 0);
    }

    #[test]
    fn corrupted_l4_checksum_dropped() {
        let mut n = Normalizer::new();
        let mut pkt = tcp_ip(b"hello");
        let last = pkt.len() - 1;
        pkt[last] ^= 0xff; // flip payload byte without fixing checksum
        assert_eq!(n.check_ipv4(&pkt), Verdict::BadL4Checksum);
        assert_eq!(n.stats().dropped(), 1);
    }

    #[test]
    fn corrupted_ip_checksum_dropped() {
        let mut n = Normalizer::new();
        let mut pkt = tcp_ip(b"x");
        pkt[10] ^= 0xff; // checksum field itself
        assert_eq!(n.check_ipv4(&pkt), Verdict::BadIpChecksum);
    }

    #[test]
    fn low_ttl_dropped_when_floored() {
        let mut n = Normalizer::with_config(NormalizerConfig {
            min_ttl: 10,
            ..Default::default()
        });
        let frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .ttl(3)
            .build();
        assert_eq!(n.check_ipv4(ip_of_frame(&frame)), Verdict::LowTtl);
        // Disabled floor accepts the same packet.
        let mut n = Normalizer::with_config(NormalizerConfig {
            min_ttl: 0,
            ..Default::default()
        });
        assert_eq!(n.check_ipv4(ip_of_frame(&frame)), Verdict::Accept);
    }

    #[test]
    fn syn_fin_dropped() {
        let mut n = Normalizer::new();
        let frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .flags(TcpFlags::SYN.union(TcpFlags::FIN))
            .build();
        assert_eq!(n.check_ipv4(ip_of_frame(&frame)), Verdict::BadFlags);
    }

    #[test]
    fn null_flags_dropped() {
        let mut n = Normalizer::new();
        let frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .flags(TcpFlags(0))
            .build();
        assert_eq!(n.check_ipv4(ip_of_frame(&frame)), Verdict::BadFlags);
    }

    #[test]
    fn fragments_pass_packet_checks() {
        let mut n = Normalizer::new();
        let frame = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .payload(&[0u8; 64])
            .dont_frag(false)
            .build();
        let frags = fragment_ipv4(ip_of_frame(&frame), 32).unwrap();
        for f in &frags {
            assert_eq!(n.check_ipv4(f), Verdict::Accept);
        }
    }

    #[test]
    fn udp_checksum_verified() {
        let mut n = Normalizer::new();
        let frame = UdpPacketSpec::new("10.0.0.1:53", "10.0.0.2:53")
            .payload(b"query")
            .build();
        assert_eq!(n.check_ipv4(ip_of_frame(&frame)), Verdict::Accept);
        let mut bad = ip_of_frame(&frame).to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(n.check_ipv4(&bad), Verdict::BadL4Checksum);
    }

    #[test]
    fn garbage_is_malformed() {
        let mut n = Normalizer::new();
        assert_eq!(n.check_ipv4(&[0u8; 5]), Verdict::Malformed);
        assert_eq!(n.stats().malformed, 1);
    }

    /// Rebuild `pkt` with 4 bytes of IP options inserted (IHL 5 → 6).
    fn with_ip_options(pkt: &[u8], opts: [u8; 4]) -> Vec<u8> {
        let mut out = Vec::with_capacity(pkt.len() + 4);
        out.extend_from_slice(&pkt[..20]);
        out.extend_from_slice(&opts);
        out.extend_from_slice(&pkt[20..]);
        out[0] = 0x46; // version 4, IHL 6
        let total = (pkt.len() + 4) as u16;
        out[2..4].copy_from_slice(&total.to_be_bytes());
        let mut v = Ipv4Packet::new_unchecked(&mut out[..]);
        v.fill_checksum();
        out
    }

    #[test]
    fn source_routed_packets_dropped() {
        let mut n = Normalizer::new();
        let base = tcp_ip(b"payload");
        // LSRR option: type 131, len 3, pointer 4, padded with EOOL.
        let lsrr = with_ip_options(&base, [131, 3, 4, 0]);
        assert_eq!(n.check_ipv4(&lsrr), Verdict::SourceRoute);
        // SSRR too.
        let ssrr = with_ip_options(&base, [137, 3, 4, 0]);
        assert_eq!(n.check_ipv4(&ssrr), Verdict::SourceRoute);
        assert_eq!(n.stats().source_route, 2);
    }

    #[test]
    fn benign_ip_options_pass() {
        let mut n = Normalizer::new();
        let base = tcp_ip(b"payload");
        // Router-alert-ish option (type 148, len 4, zero value).
        let ra = with_ip_options(&base, [148, 4, 0, 0]);
        assert_eq!(n.check_ipv4(&ra), Verdict::Accept);
        // NOP padding then EOOL.
        let nops = with_ip_options(&base, [1, 1, 1, 0]);
        assert_eq!(n.check_ipv4(&nops), Verdict::Accept);
    }

    #[test]
    fn malformed_options_treated_as_source_route() {
        let mut n = Normalizer::new();
        let base = tcp_ip(b"payload");
        // Option with impossible length.
        let bad = with_ip_options(&base, [68, 1, 0, 0]);
        assert_eq!(n.check_ipv4(&bad), Verdict::SourceRoute);
    }

    #[test]
    fn source_route_check_can_be_disabled() {
        let mut n = Normalizer::with_config(NormalizerConfig {
            drop_source_route: false,
            ..Default::default()
        });
        let base = tcp_ip(b"payload");
        let lsrr = with_ip_options(&base, [131, 3, 4, 0]);
        assert_eq!(n.check_ipv4(&lsrr), Verdict::Accept);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Accept.to_string(), "accept");
        assert_eq!(Verdict::BadL4Checksum.to_string(), "bad-l4-checksum");
        assert_eq!(Verdict::SourceRoute.to_string(), "source-route");
        assert!(Verdict::Accept.accepted());
        assert!(!Verdict::LowTtl.accepted());
    }
}
