//! Conflicting-overlap resolution policies.
//!
//! When two segments (or IP fragments) claim the same stream position with
//! *different* bytes, host stacks disagree about which copy the application
//! sees. Ptacek–Newsham inconsistent-retransmission evasions exploit exactly
//! this: send garbage first and the signature in an "overlapping retransmit"
//! (or vice versa) so an IPS that resolves the overlap differently from the
//! victim scans a stream the victim never saw.
//!
//! We model the four classical flavors at byte granularity, following the
//! target-based reassembly literature (Shankar & Paxson's active mapping,
//! Novak's Snort `policy` work). Each buffered byte remembers the start
//! offset of the segment that wrote it; when a new segment covers that byte,
//! [`OverlapPolicy::new_wins`] decides whether the new copy replaces it.

use std::fmt;

/// How conflicting overlapping data is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapPolicy {
    /// The first copy of a byte ever received wins (Windows-like; also what
    /// a strict "original data" normalizer emits).
    First,
    /// The most recently received copy wins (the "always trust the
    /// retransmission" extreme).
    Last,
    /// BSD-derived stacks: old data is kept, *except* that a new segment
    /// starting strictly before the segment that wrote the old byte
    /// overrides it (its leading edge wins).
    Bsd,
    /// Linux: like BSD, but the new segment also wins ties — a segment
    /// starting at or before the old writer's start replaces it.
    Linux,
}

impl OverlapPolicy {
    /// All four policies, for exhaustive evaluation (E9 iterates this).
    pub const ALL: [OverlapPolicy; 4] = [
        OverlapPolicy::First,
        OverlapPolicy::Last,
        OverlapPolicy::Bsd,
        OverlapPolicy::Linux,
    ];

    /// Does a newly arrived copy of a byte replace the existing one?
    ///
    /// `old_seg_start`/`new_seg_start` are the stream offsets at which the
    /// writing segments began (what distinguishes BSD from Linux behaviour).
    pub fn new_wins(self, old_seg_start: u64, new_seg_start: u64) -> bool {
        match self {
            OverlapPolicy::First => false,
            OverlapPolicy::Last => true,
            OverlapPolicy::Bsd => new_seg_start < old_seg_start,
            OverlapPolicy::Linux => new_seg_start <= old_seg_start,
        }
    }
}

impl fmt::Display for OverlapPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OverlapPolicy::First => "first",
            OverlapPolicy::Last => "last",
            OverlapPolicy::Bsd => "bsd",
            OverlapPolicy::Linux => "linux",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_never_overwrites() {
        for (old, new) in [(0, 0), (0, 5), (5, 0)] {
            assert!(!OverlapPolicy::First.new_wins(old, new));
        }
    }

    #[test]
    fn last_always_overwrites() {
        for (old, new) in [(0, 0), (0, 5), (5, 0)] {
            assert!(OverlapPolicy::Last.new_wins(old, new));
        }
    }

    #[test]
    fn bsd_new_wins_only_with_earlier_start() {
        assert!(OverlapPolicy::Bsd.new_wins(10, 5));
        assert!(!OverlapPolicy::Bsd.new_wins(10, 10));
        assert!(!OverlapPolicy::Bsd.new_wins(5, 10));
    }

    #[test]
    fn linux_new_wins_on_tie() {
        assert!(OverlapPolicy::Linux.new_wins(10, 5));
        assert!(OverlapPolicy::Linux.new_wins(10, 10));
        assert!(!OverlapPolicy::Linux.new_wins(5, 10));
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = OverlapPolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, ["first", "last", "bsd", "linux"]);
    }
}
