//! Per-direction TCP stream reassembly.
//!
//! This is the expensive machine the paper wants off the fast path: it
//! buffers out-of-order data, resolves overlaps under a configurable
//! [`OverlapPolicy`], and delivers the in-order byte stream a matcher can
//! scan. It doubles as the *victim model* — the evasion generator checks
//! that its transformed packet sequences still deliver the attack payload
//! through this reassembler configured with the victim's policy.
//!
//! ## Representation
//!
//! Buffered data lives in a `BTreeMap` of non-overlapping chunks keyed by
//! stream offset. Each chunk remembers the start offset of the segment that
//! wrote it, which is exactly the information the BSD/Linux overlap flavors
//! condition on. Stream offsets are `u64` (monotonic, unwrapped); incoming
//! 32-bit sequence numbers are unwrapped against the next expected sequence
//! number, so streams longer than 4 GiB and streams straddling the wrap
//! point both work.

use std::collections::BTreeMap;

use sd_packet::SeqNumber;

use crate::policy::OverlapPolicy;

/// Default cap on buffered out-of-order data per direction (bytes). Chosen
/// to match a typical receive window; data beyond it is dropped and counted,
/// never silently accepted — an IPS that buffers unboundedly is a DoS vector.
pub const DEFAULT_BUFFER_LIMIT: usize = 256 * 1024;

/// Fixed per-direction state overhead (offsets, policy, counters) charged by
/// [`TcpStreamReassembler::memory_bytes`] in addition to buffered data.
pub const FIXED_STATE_BYTES: usize = 64;

/// Per-chunk bookkeeping overhead charged per buffered chunk.
pub const CHUNK_OVERHEAD_BYTES: usize = 32;

#[derive(Debug, Clone)]
struct Chunk {
    data: Vec<u8>,
    /// Stream offset at which the segment that wrote this chunk started.
    writer_start: u64,
}

/// What happened to one `push` of segment data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushSummary {
    /// Bytes accepted into the buffer (after clipping and overlap losses).
    pub accepted: usize,
    /// Bytes that duplicated already-delivered stream positions.
    pub old_bytes: usize,
    /// Bytes discarded because the buffer limit was reached.
    pub window_dropped: usize,
    /// Overlapping bytes that *differed* from the copy already buffered —
    /// the signature of an inconsistent-retransmission evasion.
    pub conflicting: usize,
}

/// Running counters for one direction of a connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Segments pushed.
    pub segments: u64,
    /// Payload bytes pushed (pre-clipping).
    pub bytes: u64,
    /// Bytes delivered in order so far.
    pub delivered: u64,
    /// Bytes dropped at the buffer limit.
    pub window_dropped: u64,
    /// Bytes that retransmitted already-delivered positions.
    pub old_bytes: u64,
    /// Conflicting overlap bytes observed (differing data).
    pub conflicting: u64,
    /// Segments that arrived out of order (created or extended a gap).
    pub out_of_order_segments: u64,
}

/// One direction of a TCP connection, reassembled.
#[derive(Debug, Clone)]
pub struct TcpStreamReassembler {
    policy: OverlapPolicy,
    limit: usize,
    /// Sequence number corresponding to `next_offset` (anchor for
    /// unwrapping 32-bit sequence numbers into 64-bit offsets).
    anchor_seq: Option<SeqNumber>,
    /// Offset of the next byte to deliver.
    next_offset: u64,
    /// Delivered but not yet drained bytes.
    ready: Vec<u8>,
    chunks: BTreeMap<u64, Chunk>,
    buffered: usize,
    fin_offset: Option<u64>,
    reset: bool,
    /// Stream offsets excluded from the *application* stream (urgent bytes
    /// under discard semantics). Sorted; consumed as delivery passes them.
    skips: Vec<u64>,
    stats: StreamStats,
}

impl TcpStreamReassembler {
    /// New reassembler with the given overlap policy and default limits.
    pub fn new(policy: OverlapPolicy) -> Self {
        Self::with_limit(policy, DEFAULT_BUFFER_LIMIT)
    }

    /// New reassembler with an explicit out-of-order buffer cap.
    pub fn with_limit(policy: OverlapPolicy, limit: usize) -> Self {
        TcpStreamReassembler {
            policy,
            limit,
            anchor_seq: None,
            next_offset: 0,
            ready: Vec::new(),
            chunks: BTreeMap::new(),
            buffered: 0,
            fin_offset: None,
            reset: false,
            skips: Vec::new(),
            stats: StreamStats::default(),
        }
    }

    /// The overlap policy in force.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Record the SYN: data starts at `seq + 1`.
    ///
    /// If data was already accepted (mid-stream pickup) the anchor is kept.
    pub fn on_syn(&mut self, seq: SeqNumber) {
        if self.anchor_seq.is_none() {
            self.anchor_seq = Some(seq + 1u32);
        }
    }

    /// Record a FIN whose sequence number is `seq` (the FIN occupies one
    /// sequence position after any data in its segment).
    pub fn on_fin(&mut self, fin_seq: SeqNumber) {
        if let Some(off) = self.offset_of(fin_seq) {
            let off = off.max(self.next_offset);
            self.fin_offset = Some(self.fin_offset.map_or(off, |o| o.min(off)));
        }
    }

    /// Exclude the byte at sequence number `seq` from the application
    /// stream (urgent-byte discard semantics: the octet occupies sequence
    /// space — later data is not renumbered — but the application never
    /// sees it). No-op for already-delivered offsets.
    pub fn skip_at(&mut self, seq: SeqNumber) {
        if let Some(off) = self.offset_of(seq) {
            if off >= self.next_offset && !self.skips.contains(&off) {
                self.skips.push(off);
                self.skips.sort_unstable();
            }
        }
    }

    /// Record an RST: the stream is dead; buffered data stays drainable.
    pub fn on_rst(&mut self) {
        self.reset = true;
    }

    /// True once an RST has been seen.
    pub fn is_reset(&self) -> bool {
        self.reset
    }

    /// True when a FIN has been seen and every byte before it delivered.
    pub fn is_finished(&self) -> bool {
        self.fin_offset.is_some_and(|f| self.next_offset >= f)
    }

    /// Unwrap a 32-bit sequence number into a 64-bit stream offset.
    ///
    /// Invariant: `anchor_seq` always corresponds to `next_offset` — it is
    /// advanced in lock-step with delivery — so the 2³¹ unwrap window is
    /// centered on the live edge and arbitrarily long streams work.
    fn offset_of(&mut self, seq: SeqNumber) -> Option<u64> {
        let abs = self.signed_offset_of(seq);
        (abs >= 0).then_some(abs as u64)
    }

    /// [`offset_of`](Self::offset_of) without the negative cutoff: the
    /// unwrapped offset as a signed value, negative when `seq` falls before
    /// the stream origin. `push` needs the signed form because a segment
    /// that *starts* before offset 0 (e.g. its first byte sits at the ISN
    /// of a connection whose SYN carried `0xFFFF_FFFF`) can still extend
    /// into live data and must be clipped, not dropped whole.
    fn signed_offset_of(&mut self, seq: SeqNumber) -> i64 {
        // Mid-stream pickup: adopt the first segment's seq as offset 0.
        let anchor = *self.anchor_seq.get_or_insert(seq);
        let rel = seq.distance(anchor) as i64;
        self.next_offset as i64 + rel
    }

    /// Push one segment's payload at sequence number `seq`.
    pub fn push(&mut self, seq: SeqNumber, data: &[u8]) -> PushSummary {
        self.stats.segments += 1;
        self.stats.bytes += data.len() as u64;
        let mut summary = PushSummary::default();
        if data.is_empty() {
            return summary;
        }

        let abs = self.signed_offset_of(seq);
        let (mut start, mut data) = if abs < 0 {
            // Starts before offset 0 (seq at/below the ISN). The head is
            // old by definition, but the tail may straddle the stream
            // origin — clip instead of discarding the whole segment.
            let behind = abs.unsigned_abs();
            if behind >= data.len() as u64 {
                summary.old_bytes = data.len();
                self.stats.old_bytes += data.len() as u64;
                return summary;
            }
            summary.old_bytes = behind as usize;
            self.stats.old_bytes += behind;
            (0u64, &data[behind as usize..])
        } else {
            (abs as u64, data)
        };

        // Clip the part that retransmits delivered bytes.
        if start < self.next_offset {
            let skip = (self.next_offset - start).min(data.len() as u64) as usize;
            summary.old_bytes += skip;
            self.stats.old_bytes += skip as u64;
            data = &data[skip..];
            start = self.next_offset;
            if data.is_empty() {
                return summary;
            }
        }

        if start > self.next_offset || !self.chunks.is_empty() {
            self.stats.out_of_order_segments += u64::from(start > self.next_offset);
        }

        let (accepted, conflicting) = self.insert(start, data, &mut summary);
        summary.accepted = accepted;
        summary.conflicting = conflicting;
        self.stats.conflicting += conflicting as u64;

        self.deliver_ready();
        summary
    }

    /// Insert `[start, start+data.len())` resolving overlaps by policy.
    /// Returns (bytes newly stored, conflicting bytes observed).
    fn insert(&mut self, start: u64, data: &[u8], summary: &mut PushSummary) -> (usize, usize) {
        let end = start + data.len() as u64;
        let writer_start = start;
        let mut conflicting = 0usize;

        // Collect keys of chunks overlapping [start, end).
        let overlapping: Vec<u64> = self
            .chunks
            .range(..end)
            .filter(|(k, c)| **k + c.data.len() as u64 > start)
            .map(|(k, _)| *k)
            .collect();

        // Regions of the new segment that survive (win or uncontested).
        // Start with the whole interval and carve out lost regions.
        let mut survive: Vec<(u64, u64)> = vec![(start, end)];

        for key in overlapping {
            let old = self.chunks.remove(&key).expect("key just enumerated");
            let old_start = key;
            let old_end = old_start + old.data.len() as u64;
            let ov_s = start.max(old_start);
            let ov_e = end.min(old_end);

            // Count conflicting bytes (data differs in the overlap).
            let new_slice = &data[(ov_s - start) as usize..(ov_e - start) as usize];
            let old_slice = &old.data[(ov_s - old_start) as usize..(ov_e - old_start) as usize];
            conflicting += new_slice
                .iter()
                .zip(old_slice)
                .filter(|(a, b)| a != b)
                .count();

            let new_wins = self.policy.new_wins(old.writer_start, writer_start);
            if new_wins {
                // Old chunk keeps only its non-overlapped remnants.
                self.buffered -= old.data.len();
                if old_start < ov_s {
                    let head = old.data[..(ov_s - old_start) as usize].to_vec();
                    self.buffered += head.len();
                    self.chunks.insert(
                        old_start,
                        Chunk {
                            data: head,
                            writer_start: old.writer_start,
                        },
                    );
                }
                if ov_e < old_end {
                    let tail = old.data[(ov_e - old_start) as usize..].to_vec();
                    self.buffered += tail.len();
                    self.chunks.insert(
                        ov_e,
                        Chunk {
                            data: tail,
                            writer_start: old.writer_start,
                        },
                    );
                }
            } else {
                // New segment loses [ov_s, ov_e): carve it from `survive`;
                // the old chunk goes back untouched.
                self.chunks.insert(key, old);
                let mut next = Vec::with_capacity(survive.len() + 1);
                for (s, e) in survive {
                    if e <= ov_s || s >= ov_e {
                        next.push((s, e));
                    } else {
                        if s < ov_s {
                            next.push((s, ov_s));
                        }
                        if ov_e < e {
                            next.push((ov_e, e));
                        }
                    }
                }
                survive = next;
            }
        }

        // Store surviving new regions, respecting the buffer limit.
        let mut accepted = 0usize;
        for (s, e) in survive {
            let len = (e - s) as usize;
            if len == 0 {
                continue;
            }
            let room = self.limit.saturating_sub(self.buffered);
            let take = len.min(room);
            let dropped = len - take;
            if dropped > 0 {
                summary.window_dropped += dropped;
                self.stats.window_dropped += dropped as u64;
            }
            if take == 0 {
                continue;
            }
            let slice = &data[(s - start) as usize..(s - start) as usize + take];
            self.chunks.insert(
                s,
                Chunk {
                    data: slice.to_vec(),
                    writer_start,
                },
            );
            self.buffered += take;
            accepted += take;
        }
        (accepted, conflicting)
    }

    /// Move contiguous chunks at the live edge into the ready buffer.
    fn deliver_ready(&mut self) {
        while let Some((&off, _)) = self.chunks.first_key_value() {
            if off != self.next_offset {
                debug_assert!(off > self.next_offset, "chunk behind the live edge");
                break;
            }
            let chunk = self.chunks.remove(&off).expect("first key exists");
            self.buffered -= chunk.data.len();
            let len = chunk.data.len();
            if self.skips.is_empty() {
                self.ready.extend_from_slice(&chunk.data);
            } else {
                // Omit skipped (urgent-discarded) offsets from the
                // application stream; sequence accounting is unchanged.
                for (i, &b) in chunk.data.iter().enumerate() {
                    let pos = off + i as u64;
                    if let Ok(idx) = self.skips.binary_search(&pos) {
                        self.skips.remove(idx);
                    } else {
                        self.ready.push(b);
                    }
                }
            }
            self.next_offset += len as u64;
            self.stats.delivered += len as u64;
            // Re-anchor so sequence unwrapping stays near the live edge.
            if let Some(a) = self.anchor_seq {
                self.anchor_seq = Some(a + len);
            }
        }
    }

    /// Take all in-order bytes delivered since the last drain.
    pub fn drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.ready)
    }

    /// Append delivered bytes to `out` instead of allocating.
    pub fn drain_into(&mut self, out: &mut Vec<u8>) -> usize {
        let n = self.ready.len();
        out.append(&mut self.ready);
        n
    }

    /// Stream offset of the next byte to deliver.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Bytes currently buffered out of order.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Number of discontiguous buffered chunks (gaps + 1, roughly).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Byte-accurate state footprint: fixed header, per-chunk overhead,
    /// buffered data, and any undrained delivered bytes.
    pub fn memory_bytes(&self) -> usize {
        FIXED_STATE_BYTES
            + self.chunks.len() * CHUNK_OVERHEAD_BYTES
            + self.buffered
            + self.ready.len()
    }

    /// Running counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_str(r: &mut TcpStreamReassembler, seq: u32, s: &[u8]) -> PushSummary {
        r.push(SeqNumber(seq), s)
    }

    fn mk() -> TcpStreamReassembler {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(999)); // data starts at 1000
        r
    }

    #[test]
    fn in_order_delivery() {
        let mut r = mk();
        push_str(&mut r, 1000, b"hello ");
        push_str(&mut r, 1006, b"world");
        assert_eq!(r.drain(), b"hello world");
        assert_eq!(r.next_offset(), 11);
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn out_of_order_buffers_then_delivers() {
        let mut r = mk();
        push_str(&mut r, 1006, b"world");
        assert_eq!(r.drain(), b"");
        assert_eq!(r.buffered_bytes(), 5);
        push_str(&mut r, 1000, b"hello ");
        assert_eq!(r.drain(), b"hello world");
        assert_eq!(r.stats().out_of_order_segments, 1);
    }

    #[test]
    fn retransmission_of_delivered_data_is_old() {
        let mut r = mk();
        push_str(&mut r, 1000, b"abcdef");
        r.drain();
        let s = push_str(&mut r, 1000, b"abcdef");
        assert_eq!(s.old_bytes, 6);
        assert_eq!(s.accepted, 0);
        assert_eq!(r.drain(), b"");
    }

    #[test]
    fn partial_retransmission_clips() {
        let mut r = mk();
        push_str(&mut r, 1000, b"abcd");
        let s = push_str(&mut r, 1002, b"cdEF");
        assert_eq!(s.old_bytes, 2);
        assert_eq!(s.accepted, 2);
        assert_eq!(r.drain(), b"abcdEF");
    }

    #[test]
    fn overlap_first_policy_keeps_original() {
        let mut r = mk();
        push_str(&mut r, 1004, b"XXXX"); // offsets 4..8, buffered
        let s = push_str(&mut r, 1000, b"aaaaYYYY"); // claims 0..8
        assert_eq!(s.conflicting, 4, "XXXX vs YYYY differ");
        assert_eq!(r.drain(), b"aaaaXXXX", "First keeps the earlier copy");
    }

    #[test]
    fn overlap_last_policy_takes_new() {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::Last);
        r.on_syn(SeqNumber(999));
        push_str(&mut r, 1004, b"XXXX");
        push_str(&mut r, 1000, b"aaaaYYYY");
        assert_eq!(r.drain(), b"aaaaYYYY");
    }

    #[test]
    fn overlap_bsd_leading_edge_wins() {
        // BSD: new data wins only where the new segment starts earlier.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::Bsd);
        r.on_syn(SeqNumber(999));
        push_str(&mut r, 1004, b"XXXX"); // writer_start 4
        push_str(&mut r, 1000, b"aaaaYYYY"); // writer_start 0 < 4 → wins
        assert_eq!(r.drain(), b"aaaaYYYY");

        let mut r = TcpStreamReassembler::new(OverlapPolicy::Bsd);
        r.on_syn(SeqNumber(999));
        push_str(&mut r, 1002, b"XXXX"); // offsets 2..6, writer_start 2
        push_str(&mut r, 1002, b"YYYY"); // same start → old wins under BSD
        push_str(&mut r, 1000, b"ab");
        assert_eq!(r.drain(), b"abXXXX");
    }

    #[test]
    fn overlap_linux_ties_go_to_new() {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::Linux);
        r.on_syn(SeqNumber(999));
        push_str(&mut r, 1002, b"XXXX");
        push_str(&mut r, 1002, b"YYYY"); // same start → new wins under Linux
        push_str(&mut r, 1000, b"ab");
        assert_eq!(r.drain(), b"abYYYY");
    }

    #[test]
    fn buffer_limit_drops_and_counts() {
        let mut r = TcpStreamReassembler::with_limit(OverlapPolicy::First, 8);
        r.on_syn(SeqNumber(999));
        let s = push_str(&mut r, 1010, b"0123456789abcdef"); // 16 OoO bytes, limit 8
        assert_eq!(s.window_dropped, 8);
        assert_eq!(r.buffered_bytes(), 8);
        assert_eq!(r.stats().window_dropped, 8);
    }

    #[test]
    fn fin_closes_after_delivery() {
        let mut r = mk();
        push_str(&mut r, 1000, b"bye");
        r.on_fin(SeqNumber(1003));
        assert!(r.is_finished());
        assert!(!r.is_reset());
    }

    #[test]
    fn fin_with_gap_not_finished() {
        let mut r = mk();
        push_str(&mut r, 1004, b"later");
        r.on_fin(SeqNumber(1009));
        assert!(!r.is_finished(), "gap at 0..4 outstanding");
    }

    #[test]
    fn rst_flags_stream() {
        let mut r = mk();
        r.on_rst();
        assert!(r.is_reset());
    }

    #[test]
    fn sequence_wraparound() {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX - 2)); // data starts at MAX-1
        push_str(&mut r, u32::MAX - 1, b"ab"); // bytes at seqs MAX-1, MAX
        push_str(&mut r, 0, b"cd"); // continues across the wrap
        assert_eq!(r.drain(), b"abcd");
        assert_eq!(r.next_offset(), 4);
        // Out-of-order across the wrap too.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX - 2));
        push_str(&mut r, 0, b"cd");
        assert_eq!(r.drain(), b"");
        push_str(&mut r, u32::MAX - 1, b"ab");
        assert_eq!(r.drain(), b"abcd");
    }

    #[test]
    fn syn_at_seq_max_starts_data_at_zero() {
        // The hardest ISN: SYN consumes 0xFFFF_FFFF, so the first data
        // byte sits at wrapped seq 0.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX));
        push_str(&mut r, 0, b"hello");
        assert_eq!(r.drain(), b"hello");
        assert_eq!(r.next_offset(), 5);
    }

    #[test]
    fn segment_straddling_stream_origin_is_clipped_not_dropped() {
        // Regression: a segment whose start unwraps *before* offset 0 but
        // whose tail carries live bytes was discarded whole — with an ISN
        // at the 2^32 boundary, a retransmit that includes the SYN
        // position lost real data.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX)); // data origin at wrapped seq 0
        let s = push_str(&mut r, u32::MAX - 1, b"..abcd"); // starts 2 before origin
        assert_eq!(s.old_bytes, 2, "pre-origin head is old");
        assert_eq!(s.accepted, 4, "live tail must survive");
        assert_eq!(r.drain(), b"abcd");
        assert_eq!(r.stats().old_bytes, 2);
    }

    #[test]
    fn segment_entirely_before_origin_is_all_old() {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX));
        let s = push_str(&mut r, u32::MAX - 9, b"old"); // ends before seq 0
        assert_eq!(s.old_bytes, 3);
        assert_eq!(s.accepted, 0);
        assert_eq!(r.drain(), b"");
    }

    #[test]
    fn straddling_retransmit_after_delivery_accounts_both_clips() {
        // Head before the origin AND a delivered span: both clip, and the
        // old-byte accounting must sum them rather than overwrite.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX));
        push_str(&mut r, 0, b"ab");
        r.drain();
        // Starts 1 before the origin, re-covers delivered "ab", adds "cd".
        let s = push_str(&mut r, u32::MAX, b".abcd");
        assert_eq!(s.old_bytes, 3, "1 pre-origin + 2 delivered");
        assert_eq!(s.accepted, 2);
        assert_eq!(r.drain(), b"cd");
    }

    #[test]
    fn fin_straddling_the_wrap_finishes() {
        // Data occupies seqs MAX-1, MAX, 0, 1; the FIN position wraps to 2.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX - 2));
        push_str(&mut r, u32::MAX - 1, b"abcd");
        r.on_fin(SeqNumber(2));
        assert!(r.is_finished());
        assert_eq!(r.drain(), b"abcd");
    }

    #[test]
    fn urgent_skip_across_the_wrap() {
        // Skip the byte at wrapped seq 0 (stream offset 2) before it
        // arrives; delivery must omit exactly that byte.
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        r.on_syn(SeqNumber(u32::MAX - 2)); // data origin at MAX-1
        r.skip_at(SeqNumber(0));
        push_str(&mut r, u32::MAX - 1, b"abcd");
        assert_eq!(r.drain(), b"abd");
        assert_eq!(r.next_offset(), 4, "skipped byte still consumes seq space");
    }

    #[test]
    fn long_stream_offsets_are_64_bit() {
        let mut r = mk();
        let chunk = vec![0x61u8; 1460];
        let mut seq = 1000u32;
        // Push enough to exceed one 32-bit wrap's worth of offset math being
        // exercised incrementally (scaled down for test time: 10 MB).
        for _ in 0..7000 {
            r.push(SeqNumber(seq), &chunk);
            seq = seq.wrapping_add(1460);
            r.drain();
        }
        assert_eq!(r.next_offset(), 7000 * 1460);
    }

    #[test]
    fn memory_accounting_tracks_buffered() {
        let mut r = mk();
        assert_eq!(r.memory_bytes(), FIXED_STATE_BYTES);
        push_str(&mut r, 1010, b"0123456789"); // one OoO chunk
        assert_eq!(
            r.memory_bytes(),
            FIXED_STATE_BYTES + CHUNK_OVERHEAD_BYTES + 10
        );
        push_str(&mut r, 1000, b"0123456789");
        r.drain();
        assert_eq!(r.memory_bytes(), FIXED_STATE_BYTES);
    }

    #[test]
    fn mid_stream_pickup_adopts_first_seq() {
        let mut r = TcpStreamReassembler::new(OverlapPolicy::First);
        // No SYN ever seen.
        r.push(SeqNumber(5_000_000), b"mid");
        assert_eq!(r.drain(), b"mid");
    }

    #[test]
    fn interleaved_chunks_with_multiple_gaps() {
        let mut r = mk();
        push_str(&mut r, 1008, b"33");
        push_str(&mut r, 1004, b"22");
        push_str(&mut r, 1000, b"00");
        assert_eq!(r.chunk_count(), 2);
        assert_eq!(r.drain(), b"00");
        push_str(&mut r, 1002, b"11");
        assert_eq!(r.drain(), b"1122");
        push_str(&mut r, 1006, b"XX");
        assert_eq!(r.drain(), b"XX33");
        assert_eq!(r.buffered_bytes(), 0);
    }
}
