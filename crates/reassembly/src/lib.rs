//! # sd-reassembly — defragmentation, stream reassembly, normalization
//!
//! The substrate the paper's *baseline* is built from, and that Split-Detect
//! keeps only on its slow path:
//!
//! * [`policy`] — the four classical conflicting-overlap resolutions
//!   (First/Last/BSD/Linux). Inconsistent retransmission evasions work
//!   precisely because different host stacks resolve overlaps differently;
//!   an IPS must either know the victim's policy or try several.
//! * [`defrag`] — IPv4 fragment reassembly keyed by
//!   (src, dst, proto, ident), with byte-granularity overlap resolution and
//!   explicit resource accounting.
//! * [`stream`] — per-direction TCP stream reassembly: sequence tracking
//!   from the SYN, out-of-order buffering, overlap resolution, in-order
//!   delivery, FIN/RST handling and byte-accurate memory accounting.
//! * [`conn`] — a bidirectional connection wrapper pairing two streams.
//! * [`normalize`] — packet-level normalization: checksum verification,
//!   header sanity, the drop/accept decisions a consistent normalizer makes
//!   before bytes ever reach a matcher.
//! * [`urgent`] — urgent-pointer delivery semantics (inline vs discard),
//!   the ambiguity behind the urgent-chaff evasion.
//!
//! Everything here is deterministic and allocation-conscious, but it is the
//! *expensive* half of the comparison on purpose: per-connection state is
//! kilobytes (buffers) versus the fast path's ~16 bytes. Experiments E2/E8
//! measure exactly that gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod defrag;
pub mod normalize;
pub mod policy;
pub mod stream;
pub mod urgent;

pub use conn::Connection;
pub use defrag::Defragmenter;
pub use normalize::{Normalizer, Verdict};
pub use policy::OverlapPolicy;
pub use stream::TcpStreamReassembler;
pub use urgent::UrgentSemantics;
