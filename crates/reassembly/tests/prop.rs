//! Property tests for the reassembly substrate.
//!
//! The central invariant: for *consistent* data (no conflicting overlaps),
//! any segmentation, any reordering, and any duplication of a byte stream
//! must reassemble to exactly that stream under every overlap policy — this
//! is what makes the stream reassembler a faithful victim model. Conflicting
//! overlaps are checked against a per-byte reference model.

use proptest::prelude::*;
use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
use sd_packet::frag::fragment_ipv4;
use sd_packet::ipv4::Ipv4Packet;
use sd_packet::SeqNumber;
use sd_reassembly::policy::OverlapPolicy;
use sd_reassembly::stream::TcpStreamReassembler;
use sd_reassembly::Defragmenter;

fn arb_policy() -> impl Strategy<Value = OverlapPolicy> {
    prop::sample::select(OverlapPolicy::ALL.to_vec())
}

/// Pinned shrink of `defrag_roundtrip_any_order` (seed file:
/// `cc c37325…`): a 1-byte payload fragmented at the 8-byte minimum, with
/// the header fragment arriving after a data fragment, `policy = First`.
#[test]
fn regression_defrag_one_byte_payload_min_fragments_first_policy() {
    let payload = [0u8];
    let frame = TcpPacketSpec::new("10.0.0.1:1234", "10.0.0.2:80")
        .seq(7)
        .payload(&payload)
        .dont_frag(false)
        .build();
    let pkt = ip_of_frame(&frame).to_vec();
    let mut frags = fragment_ipv4(&pkt, 8).unwrap();

    // The shrunk case's shuffle: seed = 0, forced odd as in the generator.
    let mut state = 1u64;
    for i in (1..frags.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        frags.swap(i, j);
    }

    let mut d = Defragmenter::new(OverlapPolicy::First);
    let mut done = None;
    for (i, f) in frags.iter().enumerate() {
        let r = d.push_owned(f, i as u64).unwrap();
        if r.is_some() {
            assert_eq!(i + 1, frags.len(), "completed before all fragments");
            done = r;
        }
    }
    let out = done.expect("datagram must complete");
    let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
    assert!(ip.verify_checksum());
    assert_eq!(&out[..], &pkt[..], "reassembled datagram differs");
    assert_eq!(d.context_count(), 0);
}

/// Pinned shrink of `stream_overlaps_match_reference_model` (seed file:
/// `cc 127fbd…`): a later writer overlaps an already-*delivered* prefix
/// under `policy = Last` — delivered bytes are frozen, so the rewrite must
/// not leak into the output, and the bytes past the edge still follow the
/// policy.
#[test]
fn regression_stream_overlap_rewrites_delivered_prefix_last_policy() {
    let pushes: [(usize, usize, u8); 4] = [(0, 8, 0), (20, 10, 0), (0, 1, 1), (0, 1, 1)];
    let policy = OverlapPolicy::Last;
    let mut r = TcpStreamReassembler::new(policy);
    r.on_syn(SeqNumber(0));

    let mut model: Vec<Option<(u8, u64)>> = vec![None; 64 + 24];
    let mut delivered_upto = 0usize;
    for &(start, len, fill) in &pushes {
        let data = vec![fill; len];
        r.push(SeqNumber(1 + start as u32), &data);
        #[allow(clippy::needless_range_loop)]
        for i in start.max(delivered_upto)..start + len {
            match model[i] {
                None => model[i] = Some((fill, start as u64)),
                Some((_, old_start)) => {
                    if policy.new_wins(old_start, start as u64) {
                        model[i] = Some((fill, start as u64));
                    }
                }
            }
        }
        while delivered_upto < model.len() && model[delivered_upto].is_some() {
            delivered_upto += 1;
        }
    }
    let mut expected = Vec::new();
    for slot in &model {
        match slot {
            Some((b, _)) => expected.push(*b),
            None => break,
        }
    }
    let mut out = Vec::new();
    r.drain_into(&mut out);
    assert_eq!(out, expected, "policy {policy}");
}

proptest! {
    /// Consistent segments: any cut + shuffle + duplication delivers the
    /// original stream under every policy.
    #[test]
    fn stream_reassembles_any_consistent_arrival(
        data in prop::collection::vec(any::<u8>(), 1..400),
        cuts_seed in any::<u64>(),
        policy in arb_policy(),
        dup in any::<bool>(),
    ) {
        let len = data.len();
        // Derive a deterministic cut + permutation from the seed (cheaper
        // than nesting strategies on `data.len()`).
        let mut cuts = Vec::new();
        let mut at = 0usize;
        let mut state = cuts_seed | 1;
        while at < len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let step = 1 + (state >> 33) as usize % 16;
            let end = (at + step).min(len);
            cuts.push((at, end));
            at = end;
        }
        let mut order: Vec<usize> = (0..cuts.len()).collect();
        // Fisher-Yates with the same LCG.
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }

        let mut r = TcpStreamReassembler::new(policy);
        r.on_syn(SeqNumber(999)); // stream starts at seq 1000
        let mut out = Vec::new();
        for &i in &order {
            let (s, e) = cuts[i];
            r.push(SeqNumber(1000 + s as u32), &data[s..e]);
            if dup {
                r.push(SeqNumber(1000 + s as u32), &data[s..e]);
            }
            r.drain_into(&mut out);
        }
        prop_assert_eq!(&out, &data, "policy {}", policy);
        prop_assert_eq!(r.buffered_bytes(), 0);
        prop_assert_eq!(r.stats().conflicting, 0, "consistent data must not conflict");
    }

    /// Conflicting overlaps match a per-byte reference model that applies
    /// the same policy decision per byte.
    #[test]
    fn stream_overlaps_match_reference_model(
        pushes in prop::collection::vec((0usize..64, 1usize..24, any::<u8>()), 1..24),
        policy in arb_policy(),
    ) {
        let mut r = TcpStreamReassembler::new(policy);
        r.on_syn(SeqNumber(0)); // stream starts at seq 1

        // Reference: bytes[i] = (value, writer_start) applied in order.
        // Bytes before the delivered edge are frozen — once the reassembler
        // has handed a byte to the matcher it cannot be rewritten, no matter
        // the policy (matching real stacks, where delivered data is gone).
        let mut model: Vec<Option<(u8, u64)>> = vec![None; 64 + 24];
        let mut delivered_upto = 0usize;
        for &(start, len, fill) in &pushes {
            let data = vec![fill; len];
            r.push(SeqNumber(1 + start as u32), &data);
            #[allow(clippy::needless_range_loop)]
            for i in start.max(delivered_upto)..start + len {
                match model[i] {
                    None => model[i] = Some((fill, start as u64)),
                    Some((_, old_start)) => {
                        if policy.new_wins(old_start, start as u64) {
                            model[i] = Some((fill, start as u64));
                        }
                    }
                }
            }
            while delivered_upto < model.len() && model[delivered_upto].is_some() {
                delivered_upto += 1;
            }
        }
        // Compare the delivered prefix (up to the first hole).
        let mut expected = Vec::new();
        for slot in &model {
            match slot {
                Some((b, _)) => expected.push(*b),
                None => break,
            }
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        prop_assert_eq!(out, expected, "policy {}", policy);
    }

    /// IP fragmentation: any fragment size and arrival order reassembles to
    /// the original datagram payload, with a valid header.
    #[test]
    fn defrag_roundtrip_any_order(
        payload in prop::collection::vec(any::<u8>(), 1..600),
        frag_units in 1usize..10, // fragment payloads are 8-byte units
        seed in any::<u64>(),
        policy in arb_policy(),
    ) {
        let frame = TcpPacketSpec::new("10.0.0.1:1234", "10.0.0.2:80")
            .seq(7)
            .payload(&payload)
            .dont_frag(false)
            .build();
        let pkt = ip_of_frame(&frame).to_vec();
        let mut frags = fragment_ipv4(&pkt, frag_units * 8).unwrap();

        // Shuffle deterministically.
        let mut state = seed | 1;
        for i in (1..frags.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }

        let mut d = Defragmenter::new(policy);
        let mut done = None;
        for (i, f) in frags.iter().enumerate() {
            let r = d.push_owned(f, i as u64).unwrap();
            if r.is_some() {
                prop_assert_eq!(i + 1, frags.len(), "completed before all fragments");
                done = r;
            }
        }
        let out = done.expect("datagram must complete");
        let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(&out[..], &pkt[..], "reassembled datagram differs");
        prop_assert_eq!(d.context_count(), 0);
    }
}
