//! FragRoute-style evasion attack generation.
//!
//! Each [`EvasionStrategy`] transforms one attack conversation — a TCP flow
//! whose client→server stream contains an exact signature — into the packet
//! sequence a Ptacek–Newsham attacker would emit. The generator is
//! *victim-aware*: strategies that rely on ambiguity (inconsistent
//! retransmissions, overlapping fragments, chaff) are crafted so the
//! configured victim stack reconstructs the real payload while a
//! differently-configured observer reconstructs garbage. Every strategy is
//! verified (tests + experiment harness) to deliver the payload through
//! [`crate::victim::receive_stream`] — an "evasion" that breaks the attack
//! is a bug.

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
use sd_packet::frag::fragment_ipv4;
use sd_packet::ipv4::Ipv4Packet;
use sd_packet::tcp::TcpFlags;
use sd_reassembly::OverlapPolicy;

use crate::victim::VictimConfig;

/// The attack conversation to deliver.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// Attacker endpoint.
    pub client: (Ipv4Addr, u16),
    /// Victim endpoint.
    pub server: (Ipv4Addr, u16),
    /// The signature bytes the IPS must find.
    pub signature: Vec<u8>,
    /// Benign bytes sent before the signature.
    pub prefix: Vec<u8>,
    /// Benign bytes sent after the signature.
    pub suffix: Vec<u8>,
    /// Initial sequence number of the attacker's SYN.
    pub isn: u32,
    /// TTL for honest packets.
    pub ttl: u8,
}

impl AttackSpec {
    /// A ready-to-use spec with realistic cover text around `signature`
    /// (a few hundred bytes each side, so segmentation strategies produce
    /// genuinely multi-packet conversations).
    pub fn simple(signature: impl Into<Vec<u8>>) -> Self {
        let mut prefix = b"GET /index.html HTTP/1.1\r\nHost: target.example.com\r\n".to_vec();
        prefix.extend_from_slice(
            b"User-Agent: Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36\r\n\
              Accept: text/html,application/xhtml+xml,application/xml;q=0.9\r\n\
              Accept-Language: en-US,en;q=0.5\r\nAccept-Encoding: gzip, deflate\r\n\
              Connection: keep-alive\r\nCookie: session=deadbeefcafe0123; theme=dark\r\n\r\n",
        );
        let mut suffix = b"\r\n-- trailing exploit padding --\r\n".to_vec();
        suffix.extend_from_slice(&[b'#'; 180]);
        AttackSpec {
            client: ("10.66.0.1".parse().expect("static addr"), 31337),
            server: ("10.0.0.2".parse().expect("static addr"), 80),
            signature: signature.into(),
            prefix,
            suffix,
            isn: 0x1000_0000,
            ttl: 64,
        }
    }

    /// The complete client→server application payload.
    pub fn payload(&self) -> Vec<u8> {
        let mut p = self.prefix.clone();
        p.extend_from_slice(&self.signature);
        p.extend_from_slice(&self.suffix);
        p
    }

    /// Byte range of the signature within [`payload`](Self::payload).
    pub fn sig_range(&self) -> std::ops::Range<usize> {
        self.prefix.len()..self.prefix.len() + self.signature.len()
    }
}

/// One evasion technique from the Ptacek–Newsham / FragRoute family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvasionStrategy {
    /// No evasion: MSS-sized in-order segments (the detection floor every
    /// engine must pass).
    None,
    /// One segment boundary placed mid-signature: defeats any per-packet
    /// matcher while looking otherwise normal.
    SplitAtSignature,
    /// Every segment at most `size` bytes ("frag -s" in FragRoute): no
    /// signature piece of length > `size` can appear whole in a packet.
    TinySegments {
        /// Maximum TCP payload bytes per segment.
        size: usize,
    },
    /// IP-fragment every data packet into `frag`-byte fragments (multiple
    /// of 8): the signature never appears whole in any *IP packet*.
    TinyFragments {
        /// Fragment payload size in bytes (rounded up to a multiple of 8).
        frag: usize,
    },
    /// Overlapping IP fragments with conflicting content over the signature
    /// region; the victim's reassembly policy resolves to the real bytes.
    OverlappingFragments,
    /// Moderate segments sent in a pseudorandom order within a window.
    ReorderSegments {
        /// Reorder window in segments.
        window: usize,
    },
    /// All data segments in exactly reverse order.
    ReverseSegments,
    /// Every segment sent twice (retransmission noise).
    DuplicateSegments,
    /// Conflicting TCP retransmissions over the signature region; the
    /// victim's overlap policy resolves to the real bytes, the opposite
    /// policy reconstructs garbage.
    InconsistentRetransmission,
    /// Garbage chaff segments with *broken TCP checksums* interleaved at
    /// the signature's sequence range; the victim's stack discards them.
    BadChecksumChaff,
    /// Garbage chaff segments with TTLs that expire before the victim;
    /// only an IPS with an accurate TTL floor ignores them.
    LowTtlChaff {
        /// TTL given to chaff (must be below the victim's hop distance).
        chaff_ttl: u8,
    },
    /// Urgent-pointer chaff: garbage bytes inserted inside the signature,
    /// each flagged URG so a discard-semantics victim never delivers them
    /// — while any observer that treats urgent data as inline scans a
    /// corrupted signature. One chaff byte per `pitch` signature bytes, so
    /// no packet carries an intact piece of length ≥ `pitch` either.
    UrgentChaff {
        /// Distance between inserted urgent bytes (the defender's piece
        /// length is the natural choice).
        pitch: usize,
    },
    /// The theorem-tight adversary: in-order segments phase-shifted so a
    /// boundary falls in the middle of every defender piece — each interior
    /// segment is exactly `pitch` bytes (the defender's piece length), so
    /// no packet carries a whole piece and, against a defender whose
    /// small-segment cutoff is ≤ `pitch`, nothing ever looks small. The
    /// admissible cutoff `2p − 1` exists precisely to catch this.
    PitchSegments {
        /// The defender's piece length the attacker tunes to.
        pitch: usize,
    },
}

impl EvasionStrategy {
    /// The canonical attack suite, as exercised by experiment E1.
    pub fn catalog() -> Vec<EvasionStrategy> {
        vec![
            EvasionStrategy::None,
            EvasionStrategy::SplitAtSignature,
            EvasionStrategy::TinySegments { size: 4 },
            EvasionStrategy::TinyFragments { frag: 8 },
            EvasionStrategy::OverlappingFragments,
            EvasionStrategy::ReorderSegments { window: 6 },
            EvasionStrategy::ReverseSegments,
            EvasionStrategy::DuplicateSegments,
            EvasionStrategy::InconsistentRetransmission,
            EvasionStrategy::BadChecksumChaff,
            EvasionStrategy::LowTtlChaff { chaff_ttl: 2 },
            EvasionStrategy::UrgentChaff { pitch: 7 },
            EvasionStrategy::PitchSegments { pitch: 7 },
        ]
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EvasionStrategy::None => "none",
            EvasionStrategy::SplitAtSignature => "split-at-signature",
            EvasionStrategy::TinySegments { .. } => "tiny-segments",
            EvasionStrategy::TinyFragments { .. } => "tiny-fragments",
            EvasionStrategy::OverlappingFragments => "overlapping-fragments",
            EvasionStrategy::ReorderSegments { .. } => "reorder",
            EvasionStrategy::ReverseSegments => "reverse",
            EvasionStrategy::DuplicateSegments => "duplicate",
            EvasionStrategy::InconsistentRetransmission => "inconsistent-retransmission",
            EvasionStrategy::BadChecksumChaff => "bad-checksum-chaff",
            EvasionStrategy::LowTtlChaff { .. } => "low-ttl-chaff",
            EvasionStrategy::UrgentChaff { .. } => "urgent-chaff",
            EvasionStrategy::PitchSegments { .. } => "pitch-segments",
        }
    }
}

/// Maximum segment size for honest segments.
const MSS: usize = 1460;

struct Builder<'a> {
    spec: &'a AttackSpec,
    packets: Vec<Vec<u8>>,
    /// IP identification counter: every packet gets a distinct ident so
    /// fragments of different datagrams (and different attacks sharing a
    /// host pair in a mixed trace) never collide in a reassembly context.
    next_ident: u16,
}

impl<'a> Builder<'a> {
    fn new(spec: &'a AttackSpec) -> Self {
        Builder {
            spec,
            packets: Vec::new(),
            next_ident: spec.client.1 ^ (spec.isn as u16),
        }
    }

    fn tcp(&mut self, seq: u32, flags: TcpFlags, payload: &[u8], ttl: u8, frag: bool) -> Vec<u8> {
        let s = self.spec;
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1);
        let frame = TcpPacketSpec::between(
            std::net::SocketAddrV4::new(s.client.0, s.client.1),
            std::net::SocketAddrV4::new(s.server.0, s.server.1),
        )
        .seq(seq)
        .flags(flags)
        .ttl(ttl)
        .ident(ident)
        .dont_frag(!frag)
        .payload(payload)
        .build();
        ip_of_frame(&frame).to_vec()
    }

    fn syn(&mut self) {
        let p = self.tcp(self.spec.isn, TcpFlags::SYN, b"", self.spec.ttl, false);
        self.packets.push(p);
    }

    fn data(&mut self, offset: usize, bytes: &[u8]) {
        let seq = self.spec.isn.wrapping_add(1).wrapping_add(offset as u32);
        let p = self.tcp(
            seq,
            TcpFlags::ACK.union(TcpFlags::PSH),
            bytes,
            self.spec.ttl,
            true,
        );
        self.packets.push(p);
    }

    fn fin(&mut self, payload_len: usize) {
        let seq = self
            .spec
            .isn
            .wrapping_add(1)
            .wrapping_add(payload_len as u32);
        let p = self.tcp(
            seq,
            TcpFlags::FIN.union(TcpFlags::ACK),
            b"",
            self.spec.ttl,
            false,
        );
        self.packets.push(p);
    }
}

/// Cut `len` bytes into `(start, end)` chunks of at most `size`.
fn chunks(len: usize, size: usize) -> Vec<(usize, usize)> {
    let size = size.max(1);
    let mut v = Vec::new();
    let mut at = 0;
    while at < len {
        let end = (at + size).min(len);
        v.push((at, end));
        at = end;
    }
    v
}

/// Like [`chunks`], but with one boundary pinned at `pin` — used by the
/// reorder/duplicate strategies so the signature always straddles a segment
/// boundary (a FragRoute attacker controls segmentation and would never
/// leave the whole signature inside one packet).
fn chunks_pinned(len: usize, size: usize, pin: usize) -> Vec<(usize, usize)> {
    let size = size.max(1);
    let pin = pin.min(len);
    // Boundary set: {0, pin mod size, pin mod size + size, …} — the grid is
    // phase-shifted so `pin` lands exactly on a chunk boundary.
    let mut v = Vec::new();
    let first = pin % size;
    if first > 0 {
        v.push((0, first));
    }
    let mut at = first;
    while at < len {
        let end = (at + size).min(len);
        v.push((at, end));
        at = end;
    }
    debug_assert!(pin == 0 || pin == len || v.iter().any(|&(s, _)| s == pin));
    v
}

/// Generate the packet sequence for `spec` under `strategy`, crafted
/// against `victim`. Deterministic given `seed`.
///
/// ```
/// use sd_traffic::evasion::{generate, AttackSpec, EvasionStrategy};
/// use sd_traffic::victim::{receive_stream, VictimConfig};
///
/// let spec = AttackSpec::simple(&b"EVIL_SIGNATURE_BYTES"[..]);
/// let victim = VictimConfig::default();
/// let packets = generate(&spec, EvasionStrategy::TinySegments { size: 4 }, victim, 1);
/// // The evasion must still deliver the payload to the victim's stack:
/// assert_eq!(receive_stream(packets.iter(), victim, spec.server), spec.payload());
/// // ...while no single packet contains the whole signature:
/// assert!(packets.iter().all(|p| p.windows(20).all(|w| w != &spec.signature[..])));
/// ```
pub fn generate(
    spec: &AttackSpec,
    strategy: EvasionStrategy,
    victim: VictimConfig,
    seed: u64,
) -> Vec<Vec<u8>> {
    let payload = spec.payload();
    let sig = spec.sig_range();
    let mut b = Builder::new(spec);
    b.syn();

    match strategy {
        EvasionStrategy::None => {
            for (s, e) in chunks(payload.len(), MSS) {
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::SplitAtSignature => {
            let mid = sig.start + spec.signature.len() / 2;
            for (s, e) in [(0, mid), (mid, payload.len())] {
                // Each half may still exceed MSS; keep it in one packet only
                // if it fits, else MSS-chunk within the half (the boundary
                // at `mid` is what defeats per-packet matching).
                for (cs, ce) in chunks(e - s, MSS) {
                    b.data(s + cs, &payload[s + cs..s + ce]);
                }
            }
        }

        EvasionStrategy::TinySegments { size } => {
            for (s, e) in chunks(payload.len(), size) {
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::TinyFragments { frag } => {
            let frag = frag.div_ceil(8) * 8;
            // One big TCP packet, then fragment it at the IP layer.
            let seq = spec.isn.wrapping_add(1);
            let whole = b.tcp(
                seq,
                TcpFlags::ACK.union(TcpFlags::PSH),
                &payload,
                spec.ttl,
                true,
            );
            let frags = fragment_ipv4(&whole, frag).expect("fragmentable");
            b.packets.extend(frags);
        }

        EvasionStrategy::OverlappingFragments => {
            // Fragment the signature-carrying packet, then inject a forged
            // copy of the signature-region fragment with garbage content.
            // Ordering is policy-aware: the copy the victim should *keep*
            // is positioned so its policy picks it.
            let seq = spec.isn.wrapping_add(1);
            let whole = b.tcp(
                seq,
                TcpFlags::ACK.union(TcpFlags::PSH),
                &payload,
                spec.ttl,
                true,
            );
            // Fragment payload must be smaller than the signature so no
            // single fragment carries it whole (8-byte granularity).
            let frag_sz = ((spec.signature.len().saturating_sub(1)) / 8).max(1) * 8;
            let frags = fragment_ipv4(&whole, frag_sz).expect("fragmentable");
            // Find a fragment overlapping the signature (TCP header is 20
            // bytes into the IP payload).
            let sig_ip_start = 20 + sig.start;
            let target = frags
                .iter()
                .position(|f| {
                    let ip = Ipv4Packet::new_unchecked(&f[..]);
                    let off = ip.frag_offset() as usize;
                    let len = ip.payload().len();
                    off <= sig_ip_start && sig_ip_start < off + len
                })
                .expect("some fragment covers the signature start");
            let mut forged = frags[target].clone();
            {
                let mut v = Ipv4Packet::new_unchecked(&mut forged[..]);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
                for byte in v.payload_mut() {
                    *byte = rng.gen();
                }
                v.fill_checksum();
            }
            // First-policy victims keep the copy that arrives first; Last
            // and tie-winning Linux prefer the later copy. BSD keeps the
            // earlier-starting segment, and both copies start at the same
            // offset, so old (first-arrived) wins — like First.
            let real_first = matches!(victim.policy, OverlapPolicy::First | OverlapPolicy::Bsd);
            for (i, f) in frags.iter().enumerate() {
                if i == target {
                    if real_first {
                        b.packets.push(f.clone());
                        b.packets.push(forged.clone());
                    } else {
                        b.packets.push(forged.clone());
                        b.packets.push(f.clone());
                    }
                } else {
                    b.packets.push(f.clone());
                }
            }
        }

        EvasionStrategy::ReorderSegments { window } => {
            let mid = sig.start + spec.signature.len() / 2;
            let cuts = chunks_pinned(payload.len(), 128, mid);
            let mut idx: Vec<usize> = (0..cuts.len()).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for w in idx.chunks_mut(window.max(2)) {
                for i in (1..w.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    w.swap(i, j);
                }
            }
            for i in idx {
                let (s, e) = cuts[i];
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::ReverseSegments => {
            let mid = sig.start + spec.signature.len() / 2;
            for (s, e) in chunks_pinned(payload.len(), 128, mid).into_iter().rev() {
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::DuplicateSegments => {
            let mid = sig.start + spec.signature.len() / 2;
            for (s, e) in chunks_pinned(payload.len(), 128, mid) {
                b.data(s, &payload[s..e]);
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::InconsistentRetransmission => {
            // Garbage and real copies of the signature region, ordered so
            // the victim's policy resolves to the real bytes. The region is
            // held behind a deliberate hole so the conflicting copies meet
            // in the reassembly buffer (not the delivered stream).
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let garbage: Vec<u8> = (0..sig.len()).map(|_| rng.gen()).collect();

            // Leading prefix up to a hole of 1 byte before the signature.
            if sig.start > 1 {
                b.data(0, &payload[..sig.start - 1]);
            }
            // Both copies are split at the signature midpoint — no single
            // packet carries the whole signature — and start at identical
            // offsets, so every overlap is a *tie*: First/BSD victims keep
            // the first-arrived copy, Last/Linux victims the second.
            let mid = sig.start + sig.len() / 2;
            let real = [
                (sig.start, &payload[sig.start..mid]),
                (mid, &payload[mid..sig.end]),
            ];
            let garb = [
                (sig.start, &garbage[..mid - sig.start]),
                (mid, &garbage[mid - sig.start..]),
            ];
            let real_wins_when_later =
                matches!(victim.policy, OverlapPolicy::Last | OverlapPolicy::Linux);
            let (first, second) = if real_wins_when_later {
                (garb, real)
            } else {
                (real, garb)
            };
            for (off, bytes) in first.into_iter().chain(second) {
                b.data(off, bytes);
            }
            // Plug the hole so everything delivers.
            b.data(sig.start - 1, &payload[sig.start - 1..sig.start]);
            if sig.end < payload.len() {
                b.data(sig.end, &payload[sig.end..]);
            }
        }

        EvasionStrategy::BadChecksumChaff => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
            // Split the signature across two honest segments so no packet
            // holds it whole, and precede each honest segment with a chaff
            // twin (same seq, garbage data, broken checksum).
            let mid = sig.start + spec.signature.len() / 2;
            let cuts = [(0usize, mid), (mid, payload.len())];
            for (s, e) in cuts {
                let chaff: Vec<u8> = (0..e - s).map(|_| rng.gen()).collect();
                let seq = spec.isn.wrapping_add(1).wrapping_add(s as u32);
                let mut pkt = b.tcp(
                    seq,
                    TcpFlags::ACK.union(TcpFlags::PSH),
                    &chaff,
                    spec.ttl,
                    true,
                );
                // Break the TCP checksum (last payload byte flip would also
                // break it; flip the checksum field directly for clarity).
                let ihl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();
                pkt[ihl + 16] ^= 0xff;
                b.packets.push(pkt);
                b.data(s, &payload[s..e]);
            }
        }

        EvasionStrategy::UrgentChaff { pitch } => {
            use sd_reassembly::UrgentSemantics;
            if victim.urgent != UrgentSemantics::DiscardOne {
                // An inline-delivery victim would receive the chaff: the
                // attack only exists against discard semantics, so degrade
                // to the plain mid-signature split (still an evasion).
                let mid = sig.start + spec.signature.len() / 2;
                for (s, e) in [(0, mid), (mid, payload.len())] {
                    for (cs, ce) in chunks(e - s, MSS) {
                        b.data(s + cs, &payload[s + cs..s + ce]);
                    }
                }
            } else {
                let pitch = pitch.max(2);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x0B0E);
                // Build the wire stream: payload with a chaff byte inserted
                // after every `pitch` signature bytes.
                let mut wire = payload[..sig.start].to_vec();
                let mut chaff_at = Vec::new(); // offsets in `wire`
                for (i, &byte) in payload[sig.clone()].iter().enumerate() {
                    if i > 0 && i % pitch == 0 {
                        chaff_at.push(wire.len());
                        wire.push(rng.gen());
                    }
                    wire.push(byte);
                }
                wire.extend_from_slice(&payload[sig.end..]);

                // Segments end exactly at each chaff byte; URG pointer
                // names it (1-based offset of the last payload byte).
                let mut prev = 0usize;
                for &c in &chaff_at {
                    let seg = &wire[prev..=c];
                    let seq = spec.isn.wrapping_add(1).wrapping_add(prev as u32);
                    let mut pkt = b.tcp(
                        seq,
                        TcpFlags::ACK.union(TcpFlags::PSH).union(TcpFlags::URG),
                        seg,
                        spec.ttl,
                        true,
                    );
                    // Set the urgent pointer to the chaff (last) byte.
                    {
                        let ihl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();
                        let urg = (seg.len() as u16).to_be_bytes();
                        pkt[ihl + 18] = urg[0];
                        pkt[ihl + 19] = urg[1];
                        // Fix the TCP checksum after the edit.
                        let (src, dst) = (spec.client.0, spec.server.0);
                        let total = Ipv4Packet::new_unchecked(&pkt[..]).total_len() as usize;
                        let mut seg_bytes = pkt[ihl..total].to_vec();
                        let mut view =
                            sd_packet::tcp::TcpSegment::new_unchecked(&mut seg_bytes[..]);
                        view.fill_checksum(src, dst);
                        pkt[ihl..total].copy_from_slice(&seg_bytes);
                    }
                    b.packets.push(pkt);
                    prev = c + 1;
                }
                if prev < wire.len() {
                    b.data(prev, &wire[prev..]);
                }
            }
        }

        EvasionStrategy::PitchSegments { pitch } => {
            let pitch = pitch.max(2);
            // Leading data up to the first mid-piece boundary.
            let first = sig.start + pitch / 2;
            for (cs, ce) in chunks(first, MSS) {
                b.data(cs, &payload[cs..ce]);
            }
            // Interior segments of exactly `pitch` bytes, each straddling
            // two adjacent pieces.
            let mut at = first;
            while at + pitch < sig.end + pitch / 2 && at + pitch <= payload.len() {
                b.data(at, &payload[at..at + pitch]);
                at += pitch;
            }
            // Remainder.
            for (cs, ce) in chunks(payload.len() - at, MSS) {
                b.data(at + cs, &payload[at + cs..at + ce]);
            }
        }

        EvasionStrategy::LowTtlChaff { chaff_ttl } => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7711);
            let mid = sig.start + spec.signature.len() / 2;
            let cuts = [(0usize, mid), (mid, payload.len())];
            for (s, e) in cuts {
                let chaff: Vec<u8> = (0..e - s).map(|_| rng.gen()).collect();
                let seq = spec.isn.wrapping_add(1).wrapping_add(s as u32);
                let pkt = b.tcp(
                    seq,
                    TcpFlags::ACK.union(TcpFlags::PSH),
                    &chaff,
                    chaff_ttl,
                    true,
                );
                b.packets.push(pkt);
                b.data(s, &payload[s..e]);
            }
        }
    }

    b.fin(payload.len());
    b.packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::receive_stream;

    fn spec() -> AttackSpec {
        AttackSpec::simple(&b"EVIL_SIGNATURE_BYTES"[..])
    }

    /// The master property: every strategy, against every victim policy,
    /// still delivers the full payload to the victim.
    #[test]
    fn every_strategy_delivers_to_every_victim() {
        for policy in OverlapPolicy::ALL {
            let victim = VictimConfig {
                policy,
                ..Default::default()
            };
            for strategy in EvasionStrategy::catalog() {
                let spec = spec();
                let packets = generate(&spec, strategy, victim, 42);
                let got = receive_stream(packets.iter(), victim, spec.server);
                assert_eq!(
                    got,
                    spec.payload(),
                    "strategy {} vs victim {policy} failed to deliver",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn none_puts_signature_in_one_packet() {
        let spec = spec();
        let packets = generate(&spec, EvasionStrategy::None, VictimConfig::default(), 1);
        let found = packets.iter().any(|p| {
            p.windows(spec.signature.len())
                .any(|w| w == &spec.signature[..])
        });
        assert!(found, "baseline must be per-packet detectable");
    }

    #[test]
    fn split_at_signature_hides_from_per_packet() {
        let spec = spec();
        let packets = generate(
            &spec,
            EvasionStrategy::SplitAtSignature,
            VictimConfig::default(),
            1,
        );
        let found = packets.iter().any(|p| {
            p.windows(spec.signature.len())
                .any(|w| w == &spec.signature[..])
        });
        assert!(!found, "no packet may contain the whole signature");
    }

    #[test]
    fn tiny_segments_have_bounded_payload() {
        let spec = spec();
        let packets = generate(
            &spec,
            EvasionStrategy::TinySegments { size: 4 },
            VictimConfig::default(),
            1,
        );
        for p in &packets {
            let ip = Ipv4Packet::new_unchecked(&p[..]);
            let l4 = ip.payload();
            if l4.len() > 20 {
                assert!(l4.len() - 20 <= 4, "segment payload exceeds 4 bytes");
            }
        }
    }

    #[test]
    fn tiny_fragments_are_fragments() {
        let spec = spec();
        let packets = generate(
            &spec,
            EvasionStrategy::TinyFragments { frag: 8 },
            VictimConfig::default(),
            1,
        );
        let frag_count = packets
            .iter()
            .filter(|p| Ipv4Packet::new_unchecked(&p[..][..]).is_fragment())
            .count();
        assert!(frag_count > 5, "expected many tiny fragments");
    }

    #[test]
    fn inconsistent_retransmission_confuses_wrong_policy() {
        // Craft against a First-policy victim; a Last-policy observer
        // reconstructs garbage in the signature region.
        let spec = spec();
        let victim = VictimConfig {
            policy: OverlapPolicy::First,
            ..Default::default()
        };
        let packets = generate(
            &spec,
            EvasionStrategy::InconsistentRetransmission,
            victim,
            7,
        );
        let wrong = VictimConfig {
            policy: OverlapPolicy::Last,
            ..Default::default()
        };
        let seen_by_wrong = receive_stream(packets.iter(), wrong, spec.server);
        let has_sig = seen_by_wrong
            .windows(spec.signature.len())
            .any(|w| w == &spec.signature[..]);
        assert!(
            !has_sig,
            "an observer with the wrong policy must reconstruct garbage"
        );
    }

    #[test]
    fn chaff_is_dropped_by_victim_but_present_on_wire() {
        let spec = spec();
        let victim = VictimConfig::default();
        let packets = generate(&spec, EvasionStrategy::BadChecksumChaff, victim, 7);
        // More packets than the honest 2-segment split needs.
        assert!(packets.len() >= 6, "chaff packets must be on the wire");
        let got = receive_stream(packets.iter(), victim, spec.server);
        assert_eq!(got, spec.payload());
    }

    #[test]
    fn catalog_names_are_unique() {
        let names: Vec<&str> = EvasionStrategy::catalog()
            .iter()
            .map(|s| s.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = spec();
        let v = VictimConfig::default();
        let a = generate(&spec, EvasionStrategy::ReorderSegments { window: 4 }, v, 5);
        let b = generate(&spec, EvasionStrategy::ReorderSegments { window: 4 }, v, 5);
        assert_eq!(a, b);
    }
}
