//! Benign traffic generation.
//!
//! The paper's trace-driven numbers depend on three statistics of real
//! traffic, and this generator reproduces exactly those, seeded and
//! deterministic:
//!
//! 1. **packet-size mix** — a large pure-ACK mass (40-byte datagrams), data
//!    concentrated at the MSS (1460) with a secondary mode at 576, and a
//!    small-write tail from interactive flows. This drives the
//!    small-segment rule's benign false-diversion rate (E3).
//! 2. **payload byte statistics** — HTTP-like text by default, which drives
//!    the piece false-match rate (E4/E5).
//! 3. **flow size/concurrency structure** — heavy-tailed (bounded Pareto)
//!    flow lengths with Poisson arrivals, plus a fully-concurrent session
//!    mode for the state-vs-connections sweeps (E2/E8).
//!
//! A small fraction of flows is *interactive* (telnet/ssh-like): many tiny
//! writes. These are the benign flows the small-segment rule inevitably
//! diverts — the paper's reason the threshold must be tuned, and exactly
//! what E3 quantifies.

use std::net::{Ipv4Addr, SocketAddrV4};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
use sd_packet::tcp::TcpFlags;

use crate::payload::PayloadModel;
use crate::trace::{Trace, TracePacket};

/// Maximum segment size used for bulk data.
pub const MSS: usize = 1460;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenignConfig {
    /// RNG seed; identical configs generate identical traces.
    pub seed: u64,
    /// Number of flows.
    pub flows: usize,
    /// Pareto shape for flow sizes (smaller = heavier tail).
    pub pareto_alpha: f64,
    /// Minimum application bytes per flow.
    pub min_flow_bytes: usize,
    /// Cap on application bytes per flow.
    pub max_flow_bytes: usize,
    /// Fraction of flows that are interactive (small writes).
    pub interactive_fraction: f64,
    /// Per-data-packet probability of benign reordering (adjacent swap).
    pub reorder_prob: f64,
    /// Payload byte model.
    pub payload: PayloadModel,
    /// Mean inter-flow arrival gap in microseconds (Poisson arrivals).
    pub mean_arrival_gap_us: f64,
    /// Generate server→client data and ACKs too.
    pub bidirectional: bool,
}

impl Default for BenignConfig {
    fn default() -> Self {
        BenignConfig {
            seed: 1,
            flows: 100,
            pareto_alpha: 1.2,
            min_flow_bytes: 300,
            max_flow_bytes: 200 * 1024,
            interactive_fraction: 0.05,
            reorder_prob: 0.01,
            payload: PayloadModel::HttpLike,
            mean_arrival_gap_us: 500.0,
            bidirectional: true,
        }
    }
}

/// Seeded benign traffic generator.
#[derive(Debug)]
pub struct BenignGenerator {
    config: BenignConfig,
    rng: StdRng,
}

impl BenignGenerator {
    /// Build from a config.
    pub fn new(config: BenignConfig) -> Self {
        BenignGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    fn client_addr(&mut self, i: usize) -> SocketAddrV4 {
        let ip = Ipv4Addr::new(
            10,
            (1 + (i >> 16)) as u8,
            ((i >> 8) & 0xff) as u8,
            (i & 0xff) as u8,
        );
        SocketAddrV4::new(ip, self.rng.gen_range(1025..65000))
    }

    fn server_addr(&mut self) -> SocketAddrV4 {
        // A pool of "popular servers" so traffic shows realistic locality.
        let ip = Ipv4Addr::new(192, 168, 0, self.rng.gen_range(1..32));
        let port = *[80u16, 80, 80, 443, 443, 25, 110]
            .get(self.rng.gen_range(0..7))
            .expect("static table");
        SocketAddrV4::new(ip, port)
    }

    /// Heavy-tailed flow size: a bounded-Pareto body of mice plus an
    /// explicit elephant class (~15 % of flows, tens-to-hundreds of kB) —
    /// the split backbone measurements consistently show, and what puts
    /// the byte mass into MSS-sized packets.
    fn flow_bytes(&mut self) -> usize {
        let c = &self.config;
        if self.rng.gen_bool(0.15) {
            return self
                .rng
                .gen_range(20 * 1024..=c.max_flow_bytes.max(20 * 1024 + 1));
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let x = c.min_flow_bytes as f64 * (1.0 - u).powf(-1.0 / c.pareto_alpha);
        (x as usize).clamp(c.min_flow_bytes, c.max_flow_bytes)
    }

    /// Segment sizes for one flow's byte total.
    fn segment_sizes(&mut self, total: usize, interactive: bool) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut left = total;
        while left > 0 {
            let s = if interactive {
                // Keystrokes / line-buffered writes.
                self.rng.gen_range(1..48).min(left)
            } else if left >= MSS && self.rng.gen_bool(0.85) {
                MSS
            } else if left >= 576 && self.rng.gen_bool(0.6) {
                576
            } else {
                // Flush the remainder in one write, the way a sender's
                // buffer drains: bulk flows produce at most one sub-MSS
                // tail segment, matching observed traffic (and keeping the
                // benign small-segment count within any sane budget).
                left.min(MSS)
            };
            sizes.push(s);
            left -= s;
        }
        sizes
    }

    /// Generate one complete flow's packets starting at `t0` (micros).
    /// Returns (packets, end_time).
    fn flow(&mut self, i: usize, t0: u64) -> (Vec<TracePacket>, u64) {
        let client = self.client_addr(i);
        let server = self.server_addr();
        let interactive = self.rng.gen_bool(self.config.interactive_fraction);
        let total = if interactive {
            self.flow_bytes().min(2048) // interactive sessions are small
        } else {
            self.flow_bytes()
        };
        let payload = {
            // Borrow juggling: PayloadModel::fill needs a fresh rng borrow.
            let model = self.config.payload;
            let mut buf = Vec::new();
            model.fill(&mut self.rng, total, &mut buf);
            buf
        };

        let isn_c: u32 = self.rng.gen();
        let isn_s: u32 = self.rng.gen();
        let mut t = t0;
        let mut pkts: Vec<TracePacket> = Vec::new();

        let c2s = |seq: u32, flags: TcpFlags, data: &[u8]| {
            TcpPacketSpec::between(client, server)
                .seq(seq)
                .flags(flags)
                .payload(data)
                .build()
        };
        let s2c = |seq: u32, flags: TcpFlags, data: &[u8]| {
            TcpPacketSpec::between(server, client)
                .seq(seq)
                .flags(flags)
                .payload(data)
                .build()
        };

        // Handshake, with the options every modern SYN carries.
        let syn_options = [
            sd_packet::tcp::TcpOption::Mss(1460),
            sd_packet::tcp::TcpOption::SackPermitted,
            sd_packet::tcp::TcpOption::WindowScale(7),
        ];
        t += self.rng.gen_range(20..200);
        let syn = TcpPacketSpec::between(client, server)
            .seq(isn_c.wrapping_sub(0))
            .flags(TcpFlags::SYN)
            .tcp_options(&syn_options)
            .build();
        pkts.push(TracePacket::new(t, ip_of_frame(&syn).to_vec()));
        if self.config.bidirectional {
            t += self.rng.gen_range(20..200);
            let synack = TcpPacketSpec::between(server, client)
                .seq(isn_s)
                .flags(TcpFlags::SYN.union(TcpFlags::ACK))
                .tcp_options(&syn_options)
                .build();
            pkts.push(TracePacket::new(t, ip_of_frame(&synack).to_vec()));
            t += self.rng.gen_range(20..200);
            pkts.push(TracePacket::new(
                t,
                ip_of_frame(&c2s(isn_c + 1, TcpFlags::ACK, b"")).to_vec(),
            ));
        }

        // Data with interleaved pure ACKs from the server.
        let sizes = self.segment_sizes(payload.len(), interactive);
        let mut off = 0usize;
        let mut data_pkts: Vec<TracePacket> = Vec::new();
        for s in sizes {
            t += self.rng.gen_range(20..400);
            let frame = c2s(
                isn_c + 1 + off as u32,
                TcpFlags::ACK.union(TcpFlags::PSH),
                &payload[off..off + s],
            );
            data_pkts.push(TracePacket::new(t, ip_of_frame(&frame).to_vec()));
            off += s;
            if self.config.bidirectional && self.rng.gen_bool(0.5) {
                t += self.rng.gen_range(10..100);
                let ack = s2c(isn_s + 1, TcpFlags::ACK, b"");
                data_pkts.push(TracePacket::new(t, ip_of_frame(&ack).to_vec()));
            }
        }
        // Benign reordering: swap adjacent timestamps with low probability.
        for i in 1..data_pkts.len() {
            if self.rng.gen_bool(self.config.reorder_prob) {
                let (a, b) = (data_pkts[i - 1].ts_micros, data_pkts[i].ts_micros);
                data_pkts[i - 1].ts_micros = b;
                data_pkts[i].ts_micros = a;
            }
        }
        pkts.extend(data_pkts);

        // Teardown.
        t += self.rng.gen_range(20..200);
        pkts.push(TracePacket::new(
            t,
            ip_of_frame(&c2s(
                isn_c + 1 + off as u32,
                TcpFlags::FIN.union(TcpFlags::ACK),
                b"",
            ))
            .to_vec(),
        ));
        if self.config.bidirectional {
            t += self.rng.gen_range(20..200);
            pkts.push(TracePacket::new(
                t,
                ip_of_frame(&s2c(isn_s + 1, TcpFlags::FIN.union(TcpFlags::ACK), b"")).to_vec(),
            ));
        }
        (pkts, t)
    }

    /// Generate the full trace: flows arrive by a Poisson process and run
    /// to completion (states overlap naturally).
    pub fn generate(&mut self) -> Trace {
        let mut all = Vec::new();
        let mut t0 = 0u64;
        for i in 0..self.config.flows {
            let gap =
                -self.config.mean_arrival_gap_us * (1.0 - self.rng.gen_range(0.0..1.0f64)).ln();
            t0 += gap as u64;
            let (pkts, _) = self.flow(i, t0);
            all.extend(pkts);
        }
        Trace::from_packets(all)
    }

    /// Generate `n` sessions that are all *simultaneously open*: every SYN
    /// first, then data round-robin, then teardown — the worst-case
    /// concurrency the state experiments (E2/E8) size for.
    pub fn generate_concurrent(&mut self, n: usize, bytes_per_flow: usize) -> Trace {
        let mut all = Vec::new();
        let mut t = 0u64;
        let mut flows = Vec::with_capacity(n);
        for i in 0..n {
            let client = self.client_addr(i);
            let server = self.server_addr();
            let isn: u32 = self.rng.gen();
            let model = self.config.payload;
            let mut payload = Vec::new();
            model.fill(&mut self.rng, bytes_per_flow, &mut payload);
            flows.push((client, server, isn, payload));
            let syn = TcpPacketSpec::between(client, server)
                .seq(isn)
                .flags(TcpFlags::SYN)
                .build();
            t += 1;
            all.push(TracePacket::new(t, ip_of_frame(&syn).to_vec()));
        }
        // Round-robin data until all flows drain.
        let mut offsets = vec![0usize; n];
        let mut live = n;
        while live > 0 {
            live = 0;
            for (i, (client, server, isn, payload)) in flows.iter().enumerate() {
                if offsets[i] >= payload.len() {
                    continue;
                }
                live += 1;
                let s = offsets[i];
                let e = (s + MSS).min(payload.len());
                let frame = TcpPacketSpec::between(*client, *server)
                    .seq(isn.wrapping_add(1).wrapping_add(s as u32))
                    .flags(TcpFlags::ACK.union(TcpFlags::PSH))
                    .payload(&payload[s..e])
                    .build();
                t += 1;
                all.push(TracePacket::new(t, ip_of_frame(&frame).to_vec()));
                offsets[i] = e;
            }
        }
        // No FINs: the connections stay open, so engines must hold state
        // for all n at once (that is the point of this mode).
        Trace::from_packets(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::parse::parse_ipv4;

    #[test]
    fn deterministic_given_seed() {
        let cfg = BenignConfig {
            flows: 10,
            ..Default::default()
        };
        let a = BenignGenerator::new(cfg).generate();
        let b = BenignGenerator::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BenignGenerator::new(BenignConfig {
            flows: 5,
            ..Default::default()
        })
        .generate();
        let b = BenignGenerator::new(BenignConfig {
            flows: 5,
            seed: 2,
            ..Default::default()
        })
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn all_packets_parse() {
        let t = BenignGenerator::new(BenignConfig {
            flows: 20,
            ..Default::default()
        })
        .generate();
        for p in &t.packets {
            parse_ipv4(&p.data).expect("generated packet must parse");
        }
    }

    #[test]
    fn flow_count_matches_config() {
        let t = BenignGenerator::new(BenignConfig {
            flows: 15,
            ..Default::default()
        })
        .generate();
        assert_eq!(t.flow_count(), 15);
    }

    #[test]
    fn packet_size_mix_has_ack_and_mss_modes() {
        let t = BenignGenerator::new(BenignConfig {
            flows: 60,
            seed: 3,
            ..Default::default()
        })
        .generate();
        let mut acks = 0usize;
        let mut mss = 0usize;
        for p in &t.packets {
            match p.data.len() {
                40 => acks += 1,                // header-only
                l if l == 40 + MSS => mss += 1, // full-size data
                _ => {}
            }
        }
        assert!(acks > t.len() / 10, "expect a pure-ACK mass, got {acks}");
        assert!(mss > 0, "expect MSS-sized data packets");
    }

    #[test]
    fn interactive_flows_send_small_segments() {
        let t = BenignGenerator::new(BenignConfig {
            flows: 40,
            interactive_fraction: 1.0, // all interactive
            seed: 4,
            ..Default::default()
        })
        .generate();
        let small_data = t
            .packets
            .iter()
            .filter(|p| {
                let l = p.data.len();
                l > 40 && l < 40 + 48
            })
            .count();
        assert!(small_data > 50, "interactive flows must write small");
    }

    #[test]
    fn concurrent_mode_opens_everything_at_once() {
        let mut g = BenignGenerator::new(BenignConfig::default());
        let t = g.generate_concurrent(50, 4000);
        assert_eq!(t.flow_count(), 50);
        // First 50 packets are the SYNs.
        for p in &t.packets[..50] {
            let parsed = parse_ipv4(&p.data).unwrap();
            let tcp = parsed.tcp().unwrap();
            assert!(tcp.repr.flags.syn());
        }
        // No FINs anywhere.
        for p in &t.packets {
            let parsed = parse_ipv4(&p.data).unwrap();
            if let Some(tcp) = parsed.tcp() {
                assert!(!tcp.repr.flags.fin());
            }
        }
    }

    #[test]
    fn timestamps_nondecreasing() {
        let t = BenignGenerator::new(BenignConfig {
            flows: 10,
            seed: 9,
            ..Default::default()
        })
        .generate();
        for w in t.packets.windows(2) {
            assert!(w[0].ts_micros <= w[1].ts_micros);
        }
    }
}
