//! Trace statistics.
//!
//! DESIGN §3 claims the synthetic generator reproduces the three workload
//! statistics the experiments depend on: the packet-size mix, payload byte
//! statistics, and flow size/concurrency structure. This module computes
//! those statistics from any trace — synthetic or loaded from pcap — so
//! the claim is *checkable* (tests below assert the generator's output
//! matches its calibration targets) and so `trace_tool info` / `sd` can
//! describe real captures in the same terms.

use std::collections::HashMap;

use sd_flow::FlowKey;
use sd_packet::parse::{parse_ipv4, Transport};

use crate::trace::Trace;

/// Packet-size histogram in the buckets the IPS literature uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeMix {
    /// Header-only packets (pure ACKs): IP length ≤ 40.
    pub ack_sized: u64,
    /// Small data segments: payload 1–63 bytes.
    pub small: u64,
    /// Mid-size: payload 64–575.
    pub mid: u64,
    /// The 576-byte legacy MTU mode: payload 576–1459.
    pub large: u64,
    /// Full-size segments: payload ≥ 1460 (MSS).
    pub mss: u64,
}

impl SizeMix {
    /// Total packets counted.
    pub fn total(&self) -> u64 {
        self.ack_sized + self.small + self.mid + self.large + self.mss
    }

    /// Fraction of packets in the pure-ACK bucket.
    pub fn ack_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.ack_sized as f64 / self.total() as f64
        }
    }
}

/// Flow-level statistics.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Application bytes per flow (client+server payload), sorted ascending.
    pub flow_bytes: Vec<u64>,
    /// Maximum number of simultaneously open flows (SYN-seen to FIN/RST).
    pub peak_concurrency: usize,
}

impl FlowStats {
    /// The p-th percentile of flow sizes (0.0–1.0).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.flow_bytes.is_empty() {
            return 0;
        }
        let idx = ((self.flow_bytes.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        self.flow_bytes[idx]
    }

    /// Fraction of total bytes carried by the top `frac` of flows — the
    /// heavy-tail signature (e.g. "top 10 % of flows carry 80 % of bytes").
    pub fn top_flow_byte_share(&self, frac: f64) -> f64 {
        let total: u64 = self.flow_bytes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let n = ((self.flow_bytes.len() as f64) * frac.clamp(0.0, 1.0)).ceil() as usize;
        let top: u64 = self.flow_bytes.iter().rev().take(n).sum();
        top as f64 / total as f64
    }
}

/// Byte-value statistics of payloads.
#[derive(Debug, Clone)]
pub struct PayloadStats {
    /// Frequency of each byte value across all payload bytes.
    pub histogram: [u64; 256],
}

impl PayloadStats {
    /// Shannon entropy in bits per byte (8.0 = uniform random, ~4–5 =
    /// typical protocol text).
    pub fn entropy_bits(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &self.histogram {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Fraction of printable-ASCII payload bytes.
    pub fn printable_fraction(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let printable: u64 = (0x20..0x7fu8)
            .map(|b| self.histogram[b as usize])
            .sum::<u64>()
            + self.histogram[b'\r' as usize]
            + self.histogram[b'\n' as usize];
        printable as f64 / total as f64
    }
}

/// All statistics of one trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Packet-size mix.
    pub sizes: SizeMix,
    /// Flow structure.
    pub flows: FlowStats,
    /// Payload byte statistics.
    pub payload: PayloadStats,
}

/// Compute the statistics of a trace in one pass.
pub fn analyze(trace: &Trace) -> TraceStats {
    let mut sizes = SizeMix::default();
    let mut histogram = [0u64; 256];
    let mut flow_bytes: HashMap<FlowKey, u64> = HashMap::new();
    let mut open: HashMap<FlowKey, bool> = HashMap::new();
    let mut peak = 0usize;

    for pkt in &trace.packets {
        let Ok(parsed) = parse_ipv4(&pkt.data) else {
            continue;
        };
        let payload: &[u8] = match &parsed.transport {
            Transport::Tcp(t) => t.payload,
            Transport::Udp(u) => u.payload,
            _ => &[],
        };
        match payload.len() {
            0 => sizes.ack_sized += 1,
            1..=63 => sizes.small += 1,
            64..=575 => sizes.mid += 1,
            576..=1459 => sizes.large += 1,
            _ => sizes.mss += 1,
        }
        for &b in payload {
            histogram[b as usize] += 1;
        }
        if let Some((key, _)) = FlowKey::from_parsed(&parsed) {
            *flow_bytes.entry(key).or_insert(0) += payload.len() as u64;
            if let Transport::Tcp(t) = &parsed.transport {
                if t.repr.flags.syn() {
                    open.insert(key, true);
                    peak = peak.max(open.values().filter(|&&v| v).count());
                } else if t.repr.flags.fin() || t.repr.flags.rst() {
                    open.insert(key, false);
                }
            }
        }
    }

    let mut flow_bytes: Vec<u64> = flow_bytes.into_values().collect();
    flow_bytes.sort_unstable();
    TraceStats {
        sizes,
        flows: FlowStats {
            flow_bytes,
            peak_concurrency: peak,
        },
        payload: PayloadStats { histogram },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign::{BenignConfig, BenignGenerator};
    use crate::payload::PayloadModel;

    fn standard() -> TraceStats {
        analyze(
            &BenignGenerator::new(BenignConfig {
                flows: 150,
                seed: 44,
                ..Default::default()
            })
            .generate(),
        )
    }

    /// DESIGN §3 calibration claim 1: the packet-size mix has a large
    /// pure-ACK mass and data concentrated at the MSS.
    #[test]
    fn generator_size_mix_matches_calibration() {
        let s = standard();
        assert!(
            (0.25..0.75).contains(&s.sizes.ack_fraction()),
            "ACK mass {:.2} out of band",
            s.sizes.ack_fraction()
        );
        assert!(
            s.sizes.mss > s.sizes.mid,
            "bulk data must concentrate at the MSS: {:?}",
            s.sizes
        );
    }

    /// DESIGN §3 calibration claim 2: payload bytes look like protocol
    /// text, not random binary.
    #[test]
    fn generator_payload_is_textlike() {
        let s = standard();
        let entropy = s.payload.entropy_bits();
        assert!(
            (3.0..6.5).contains(&entropy),
            "HTTP-like entropy should sit well below 8 bits: {entropy:.2}"
        );
        assert!(s.payload.printable_fraction() > 0.8);

        // And uniform payloads measure as such.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let mut hist = [0u64; 256];
        for b in PayloadModel::Uniform.generate(&mut rng, 1 << 16) {
            hist[b as usize] += 1;
        }
        let u = PayloadStats { histogram: hist };
        assert!(u.entropy_bits() > 7.9);
    }

    /// DESIGN §3 calibration claim 3: flow sizes are heavy-tailed.
    #[test]
    fn generator_flow_sizes_are_heavy_tailed() {
        let s = standard();
        let share = s.flows.top_flow_byte_share(0.10);
        assert!(
            share > 0.4,
            "top 10% of flows should carry a dominant byte share, got {share:.2}"
        );
        assert!(s.flows.percentile(0.5) < s.flows.percentile(0.95) / 2);
    }

    #[test]
    fn concurrency_tracks_overlapping_flows() {
        let mut gen = BenignGenerator::new(BenignConfig {
            seed: 9,
            ..Default::default()
        });
        let t = gen.generate_concurrent(40, 3000);
        let s = analyze(&t);
        assert_eq!(s.flows.peak_concurrency, 40, "all sessions open at once");
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = analyze(&Trace::new());
        assert_eq!(s.sizes.total(), 0);
        assert_eq!(s.flows.percentile(0.5), 0);
        assert_eq!(s.flows.top_flow_byte_share(0.1), 0.0);
        assert_eq!(s.payload.entropy_bits(), 0.0);
        assert_eq!(s.payload.printable_fraction(), 0.0);
        assert_eq!(s.sizes.ack_fraction(), 0.0);
    }
}
