//! Seeded Snort-subset rule-corpus generator.
//!
//! Deployment-scale rule sets (ET Open–class: 10k–40k rules) are what the
//! piece automaton must survive, and their *shape* is what stresses it:
//! families of rules sharing long content prefixes (piece dedup), a
//! length distribution concentrated in the teens-to-forties with a long
//! tail, and an alphabet mix of HTTP-ish text and binary shellcode-style
//! hex runs. This module emits corpora with exactly those statistics, in
//! the rule subset `sd_ips::rules` parses, seeded and deterministic:
//! identical configs produce byte-identical files.
//!
//! The generator emits rule *text*, not parsed rules — the parse side
//! stays in `sd-ips`, and every consumer (CLI `generate-rules`, the
//! scale-equivalence suite, the oracle's `--rules-seed` campaigns, the
//! 10k-rule bench mix) exercises the real loader on the way in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Configuration for one generated corpus.
#[derive(Debug, Clone, Copy)]
pub struct RuleCorpusConfig {
    /// Number of `alert` rules emitted (the loadable signature count).
    pub rules: usize,
    /// RNG seed; identical configs generate identical text.
    pub seed: u64,
    /// Mean rules per family. Rules in a family share a content prefix
    /// (8–20 bytes), the way real vulnerability families do — this is what
    /// gives the piece automaton prefix sharing to dedup.
    pub family_size: usize,
    /// Shortest content emitted. Must be ≥ 12 so every rule is admissible
    /// under the default split (k=3 pieces of ≥ 4 bytes).
    pub min_content_len: usize,
    /// Longest content emitted (tail of the length distribution).
    pub max_content_len: usize,
    /// Fraction of rules whose content is binary (emitted as `|hex|` runs).
    pub hex_fraction: f64,
    /// Fraction of rules carrying a second, shorter `content`.
    pub multi_content_fraction: f64,
    /// Fraction of rules carrying `nocase` (recorded, not honored).
    pub nocase_fraction: f64,
    /// Fraction of non-`alert` rules (`pass`/`drop`) sprinkled in — real
    /// files mix actions; loaders must skip, not choke.
    pub non_alert_fraction: f64,
    /// Fraction of rules wrapped with a backslash continuation.
    pub wrap_fraction: f64,
    /// Deliberately malformed lines appended at the end (one parse error
    /// each) — for exercising the lenient loader's diagnostics.
    pub malformed: usize,
}

impl Default for RuleCorpusConfig {
    fn default() -> Self {
        RuleCorpusConfig {
            rules: 1000,
            seed: 0xD0_5E_ED,
            family_size: 8,
            min_content_len: 16,
            max_content_len: 60,
            hex_fraction: 0.25,
            multi_content_fraction: 0.15,
            nocase_fraction: 0.10,
            non_alert_fraction: 0.02,
            wrap_fraction: 0.05,
            malformed: 0,
        }
    }
}

impl RuleCorpusConfig {
    /// A corpus of `rules` rules under `seed`, other knobs default.
    pub fn sized(rules: usize, seed: u64) -> Self {
        RuleCorpusConfig {
            rules,
            seed,
            ..Default::default()
        }
    }
}

const TEXT_TOKENS: &[&str] = &[
    "GET /",
    "POST /",
    "/cgi-bin/",
    "/admin/",
    "../..",
    "cmd.exe",
    "/etc/passwd",
    "SELECT ",
    "UNION ",
    "<script>",
    "User-Agent:",
    "powershell",
    "/bin/sh",
    "wget http://",
    "eval(",
    "base64,",
    "%00",
    "id=",
    "exec ",
    ".php?",
];

const SRC_ADDRS: &[&str] = &["$EXTERNAL_NET", "any", "$HOME_NET", "!$HOME_NET"];
const DST_ADDRS: &[&str] = &["$HOME_NET", "any", "$HTTP_SERVERS", "$SQL_SERVERS"];
const PORTS: &[&str] = &["any", "80", "443", "53", "8080", "1024:", "[80,8080]", "21"];
const CLASSTYPES: &[&str] = &[
    "web-application-attack",
    "attempted-admin",
    "trojan-activity",
    "shellcode-detect",
    "policy-violation",
];

/// Printable content character (safe subset: no `"`, `\`, `|`, `;`).
fn text_byte(rng: &mut StdRng) -> u8 {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./%=& ";
    CHARS[rng.gen_range(0..CHARS.len())]
}

/// A text content of exactly `len` bytes, starting with `prefix`.
fn text_content(rng: &mut StdRng, prefix: &str, len: usize) -> String {
    let mut out = String::from(prefix);
    while out.len() < len {
        if out.len() + 8 < len && rng.gen_bool(0.3) {
            let tok = TEXT_TOKENS[rng.gen_range(0..TEXT_TOKENS.len())];
            if out.len() + tok.len() <= len {
                out.push_str(tok);
                continue;
            }
        }
        out.push(text_byte(rng) as char);
    }
    out
}

/// A `|hex|` run content of exactly `len` bytes, starting with `prefix`
/// bytes. Shellcode-flavored: NOP runs are common.
fn hex_content(rng: &mut StdRng, prefix: &[u8], len: usize) -> String {
    let mut bytes = prefix.to_vec();
    while bytes.len() < len {
        if rng.gen_bool(0.2) {
            let run = rng.gen_range(2..6).min(len - bytes.len());
            bytes.extend(std::iter::repeat(0x90u8).take(run));
        } else {
            bytes.push(rng.gen_range(0..=255u32) as u8);
        }
    }
    let mut out = String::from("|");
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{b:02X}");
    }
    out.push('|');
    out
}

/// Draw a content length: concentrated near the minimum with a tail to
/// `max` (Snort content strings are mostly short tokens, occasionally a
/// whole shellcode blob).
fn content_len(rng: &mut StdRng, min: usize, max: usize) -> usize {
    let span = max.saturating_sub(min).max(1);
    // Square a uniform draw: mass near 0, tail to 1.
    let u: f64 = rng.gen_range(0.0..1.0);
    min + ((u * u) * span as f64) as usize
}

/// Generate a rule corpus as text. The emitted file parses cleanly with
/// `sd_ips::rules::parse_rules` when `malformed == 0`; with `malformed > 0`
/// exactly that many line-numbered errors surface through the lenient
/// loader, and every well-formed rule still loads.
pub fn generate_rule_corpus(config: &RuleCorpusConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let min_len = config.min_content_len.max(12);
    let max_len = config.max_content_len.max(min_len + 1);
    let mut out = format!(
        "# generated rule corpus: {} rules, seed {:#x}\n# emitted by sd-traffic rulegen; parse with sd_ips::rules\n",
        config.rules, config.seed
    );

    let mut emitted = 0usize;
    let mut family = 0usize;
    let mut sid = 2_000_000u32;
    while emitted < config.rules {
        family += 1;
        // One family: a shared content prefix and a burst of rules on it.
        let fam_hex = rng.gen_bool(config.hex_fraction);
        let prefix_len = rng.gen_range(8..=20usize);
        let text_prefix = text_content(&mut rng, "", prefix_len);
        let hex_prefix: Vec<u8> = (0..prefix_len)
            .map(|_| rng.gen_range(0..=255u32) as u8)
            .collect();
        let fam_rules = rng.gen_range(1..=config.family_size.max(1) * 2);
        let classtype = CLASSTYPES[rng.gen_range(0..CLASSTYPES.len())];
        let _ = writeln!(out, "# family {family} ({} rules)", fam_rules);

        for member in 0..fam_rules {
            if emitted >= config.rules {
                break;
            }
            sid += 1;
            let len = content_len(&mut rng, min_len.max(prefix_len + 4), max_len);
            let content = if fam_hex {
                hex_content(&mut rng, &hex_prefix, len)
            } else {
                text_content(&mut rng, &text_prefix, len)
            };
            let proto = match rng.gen_range(0..10u32) {
                0 => "udp",
                1 => "ip",
                _ => "tcp",
            };
            let action = if rng.gen_bool(config.non_alert_fraction) {
                if rng.gen_bool(0.5) {
                    "pass"
                } else {
                    "drop"
                }
            } else {
                "alert"
            };
            let src = SRC_ADDRS[rng.gen_range(0..SRC_ADDRS.len())];
            let dst = DST_ADDRS[rng.gen_range(0..DST_ADDRS.len())];
            let sport = PORTS[rng.gen_range(0..PORTS.len())];
            let dport = PORTS[rng.gen_range(0..PORTS.len())];

            let mut opts = format!(
                "msg:\"GEN family-{family} member-{member} {classtype}\"; \
                 flow:to_server,established; content:\"{content}\";"
            );
            if rng.gen_bool(config.multi_content_fraction) {
                let extra_len = rng.gen_range(6..14usize);
                let extra = text_content(&mut rng, "", extra_len);
                let _ = write!(opts, " content:\"{extra}\"; depth:200;");
            }
            if rng.gen_bool(config.nocase_fraction) {
                opts.push_str(" nocase;");
            }
            let _ = write!(
                opts,
                " classtype:{classtype}; sid:{sid}; rev:{};",
                rng.gen_range(1..=4u32)
            );

            let line = format!("{action} {proto} {src} {sport} -> {dst} {dport} ({opts})");
            if rng.gen_bool(config.wrap_fraction) {
                // Wrap after the header, Snort-file style.
                let cut = line.find('(').unwrap_or(line.len() / 2);
                let _ = writeln!(out, "{} \\\n    {}", &line[..cut].trim_end(), &line[cut..]);
            } else {
                let _ = writeln!(out, "{line}");
            }
            // Only alert rules count toward the target: they are what
            // `RuleSet::to_signatures` loads.
            if action == "alert" {
                emitted += 1;
            }
        }
    }

    // Deliberately malformed tail lines, each one parse error, cycling
    // through distinct failure shapes so diagnostics stay diverse.
    const BROKEN: &[&str] = &[
        r#"alert icmp any any -> any any (content:"unsupported-proto"; sid:1;)"#,
        r#"alert tcp any any -> any any (msg:"no content here"; sid:2;)"#,
        r#"alert tcp any any -> any any (content:"bad|hex run"; sid:3;)"#,
        r#"alert tcp any any -> any any (content:"unterminated; sid:4;)"#,
        r#"frobnicate tcp any any -> any any (content:"bad-action"; sid:5;)"#,
        r#"alert tcp any any any any (content:"missing-arrow"; sid:6;)"#,
    ];
    for i in 0..config.malformed {
        let _ = writeln!(out, "{}", BROKEN[i % BROKEN.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = RuleCorpusConfig::sized(200, 42);
        assert_eq!(generate_rule_corpus(&cfg), generate_rule_corpus(&cfg));
        let other = generate_rule_corpus(&RuleCorpusConfig::sized(200, 43));
        assert_ne!(generate_rule_corpus(&cfg), other);
    }

    #[test]
    fn emits_requested_rule_count_and_families() {
        let text = generate_rule_corpus(&RuleCorpusConfig::sized(300, 7));
        let alerts = text
            .lines()
            .filter(|l| l.trim_start().starts_with("alert "))
            .count();
        // Wrapped alert rules still start with "alert"; count is exact.
        assert_eq!(alerts, 300);
        assert!(text.contains("# family 2"), "multiple families");
    }

    #[test]
    fn contents_are_long_enough_to_split() {
        // Every quoted primary content must be ≥ 12 decoded bytes; spot
        // check by rough text length (hex runs are 3 chars/byte).
        let text = generate_rule_corpus(&RuleCorpusConfig::sized(100, 11));
        for line in text.lines().filter(|l| l.contains("content:")) {
            let start = line.find("content:\"").unwrap() + 9;
            let rest = &line[start..];
            let end = rest.find('"').unwrap();
            assert!(end >= 12, "content too short in {line}");
        }
    }

    #[test]
    fn malformed_tail_is_emitted() {
        let cfg = RuleCorpusConfig {
            malformed: 9,
            ..RuleCorpusConfig::sized(10, 3)
        };
        let text = generate_rule_corpus(&cfg);
        assert!(text.contains("frobnicate"));
        assert!(text.lines().count() > 10);
    }
}
