//! Mixing attack flows into benign traffic.
//!
//! Experiments need traces where ground truth is known per flow: which
//! connections carry an attack, with which signature, transformed by which
//! evasion. The mixer interleaves attack packet sequences into a benign
//! trace (attack packets keep their relative order — TCP semantics depend
//! on it — but are spread across the benign timeline) and records labels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_flow::FlowKey;
use sd_packet::parse::parse_ipv4;

use crate::trace::{Trace, TracePacket};

/// Ground truth for one injected attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackLabel {
    /// The attack connection.
    pub flow: FlowKey,
    /// Index of the signature carried (caller-defined id space).
    pub signature: usize,
    /// Evasion strategy name.
    pub strategy: &'static str,
}

/// A trace plus ground-truth labels.
#[derive(Debug, Clone, Default)]
pub struct LabeledTrace {
    /// The packets.
    pub trace: Trace,
    /// One label per injected attack flow.
    pub attacks: Vec<AttackLabel>,
}

impl LabeledTrace {
    /// A labelled trace with no attacks.
    pub fn benign(trace: Trace) -> Self {
        LabeledTrace {
            trace,
            attacks: Vec::new(),
        }
    }

    /// True if `flow` is a labelled attack.
    pub fn is_attack(&self, flow: &FlowKey) -> bool {
        self.attacks.iter().any(|a| a.flow == *flow)
    }
}

/// Interleave `attacks` (each an ordered IPv4 packet sequence plus its
/// label data) into `benign`. Attack packets are assigned evenly spaced
/// timestamps across the benign span, jittered by `seed`, preserving their
/// relative order.
pub fn mix(
    benign: Trace,
    attacks: Vec<(Vec<Vec<u8>>, usize, &'static str)>,
    seed: u64,
) -> LabeledTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = benign
        .packets
        .last()
        .map_or(1_000_000, |p| p.ts_micros.max(1));
    let mut packets = benign.packets;
    let mut labels = Vec::new();

    for (pkts, signature, strategy) in attacks {
        if pkts.is_empty() {
            continue;
        }
        let flow = parse_ipv4(&pkts[0])
            .ok()
            .and_then(|p| FlowKey::from_parsed(&p).map(|(k, _)| k))
            .expect("attack packets must parse");
        labels.push(AttackLabel {
            flow,
            signature,
            strategy,
        });
        // Spread across a random sub-window of the trace.
        let start = rng.gen_range(0..=span / 2);
        let width = span - start;
        let n = pkts.len() as u64;
        for (i, data) in pkts.into_iter().enumerate() {
            let ts = start + width * i as u64 / n;
            packets.push(TracePacket::new(ts, data));
        }
    }
    LabeledTrace {
        trace: Trace::from_packets(packets),
        attacks: labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign::{BenignConfig, BenignGenerator};
    use crate::evasion::{generate, AttackSpec, EvasionStrategy};
    use crate::victim::VictimConfig;

    fn attack_pkts(strategy: EvasionStrategy) -> (Vec<Vec<u8>>, AttackSpec) {
        let spec = AttackSpec::simple(&b"EVIL_SIGNATURE_BYTES"[..]);
        (generate(&spec, strategy, VictimConfig::default(), 3), spec)
    }

    #[test]
    fn labels_record_attack_flow() {
        let benign = BenignGenerator::new(BenignConfig {
            flows: 5,
            ..Default::default()
        })
        .generate();
        let (pkts, spec) = attack_pkts(EvasionStrategy::None);
        let labeled = mix(benign, vec![(pkts, 0, "none")], 9);
        assert_eq!(labeled.attacks.len(), 1);
        let label = &labeled.attacks[0];
        assert_eq!(label.strategy, "none");
        // The label's flow matches the spec endpoints.
        let (expect, _) = FlowKey::from_endpoints(6, spec.client, spec.server);
        assert_eq!(label.flow, expect);
        assert!(labeled.is_attack(&expect));
    }

    #[test]
    fn attack_relative_order_preserved() {
        let benign = BenignGenerator::new(BenignConfig {
            flows: 10,
            ..Default::default()
        })
        .generate();
        let (pkts, spec) = attack_pkts(EvasionStrategy::TinySegments { size: 4 });
        let original = pkts.clone();
        let labeled = mix(benign, vec![(pkts, 0, "tiny-segments")], 4);
        let (attack_key, _) = FlowKey::from_endpoints(6, spec.client, spec.server);
        let recovered: Vec<&TracePacket> = labeled
            .trace
            .packets
            .iter()
            .filter(|p| p.flow_key() == Some(attack_key))
            .collect();
        assert_eq!(recovered.len(), original.len());
        for (got, want) in recovered.iter().zip(&original) {
            assert_eq!(&got.data, want, "attack order must survive mixing");
        }
    }

    #[test]
    fn mixing_is_deterministic() {
        let benign = BenignGenerator::new(BenignConfig {
            flows: 4,
            ..Default::default()
        })
        .generate();
        let (p1, _) = attack_pkts(EvasionStrategy::None);
        let (p2, _) = attack_pkts(EvasionStrategy::None);
        let a = mix(benign.clone(), vec![(p1, 0, "none")], 7);
        let b = mix(benign, vec![(p2, 0, "none")], 7);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn benign_constructor_has_no_attacks() {
        let t = LabeledTrace::benign(Trace::new());
        assert!(t.attacks.is_empty());
    }
}
