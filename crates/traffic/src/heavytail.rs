//! Heavy-tailed, high-churn workloads for the flow-state-at-scale sweeps.
//!
//! [`BenignGenerator`](crate::benign::BenignGenerator) models a calibrated
//! packet-size/payload mix; this module isolates the *flow-population*
//! dimension instead. The occupancy experiments (E20) need two knobs the
//! benign generator does not expose directly:
//!
//! 1. **Zipf flow sizes** — a discrete Zipf rank distribution mapped onto a
//!    geometric size grid, so a handful of elephant flows carry most of the
//!    bytes while the mouse tail dominates the *flow count*. That is the
//!    regime in which a fixed-capacity flow table earns (or loses) its
//!    keep: the table must hold the mice without letting their churn evict
//!    the elephants mid-transfer.
//! 2. **Configurable churn** — flows complete and are immediately replaced
//!    by fresh 5-tuples, holding concurrency at a target while continually
//!    forcing new inserts (and, past capacity, CLOCK evictions).
//!
//! Everything is seeded and deterministic: identical configs generate
//! identical traces, so the oracle can embed heavy-tail background noise in
//! trace programs without breaking reproducibility.

use std::net::{Ipv4Addr, SocketAddrV4};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
use sd_packet::tcp::TcpFlags;

use crate::benign::MSS;
use crate::trace::{Trace, TracePacket};

/// Discrete Zipf sampler over a geometric grid of flow sizes.
///
/// Rank `k` (1-based) has probability proportional to `1 / k^alpha`; rank 1
/// maps to `min_bytes` (mice are common) and the last rank to `max_bytes`
/// (elephants are rare), with geometric interpolation between them.
/// Sampling is a uniform draw plus a binary search in the precomputed CDF —
/// no allocation after construction.
#[derive(Debug, Clone)]
pub struct ZipfSizes {
    cdf: Vec<f64>,
    sizes: Vec<usize>,
}

impl ZipfSizes {
    /// Build a sampler with `ranks` size classes between `min_bytes` and
    /// `max_bytes` and Zipf exponent `alpha` (larger = steeper tail).
    pub fn new(alpha: f64, min_bytes: usize, max_bytes: usize, ranks: usize) -> Self {
        let ranks = ranks.max(1);
        let min_bytes = min_bytes.max(1);
        let max_bytes = max_bytes.max(min_bytes);
        let ratio = max_bytes as f64 / min_bytes as f64;
        let mut cdf = Vec::with_capacity(ranks);
        let mut sizes = Vec::with_capacity(ranks);
        let mut acc = 0.0f64;
        for k in 1..=ranks {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
            // Geometric interpolation: rank 1 → min, rank `ranks` → max.
            let frac = if ranks == 1 {
                1.0
            } else {
                (k - 1) as f64 / (ranks - 1) as f64
            };
            sizes.push(((min_bytes as f64) * ratio.powf(frac)).round() as usize);
        }
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        ZipfSizes { cdf, sizes }
    }

    /// Draw one flow size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        self.sizes[idx.min(self.sizes.len() - 1)]
    }

    /// The size grid (rank order, smallest first). Exposed for tests and
    /// bench reporting.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }
}

/// Configuration for [`HeavyTailGenerator`].
#[derive(Debug, Clone, Copy)]
pub struct HeavyTailConfig {
    /// RNG seed; identical configs generate identical traces.
    pub seed: u64,
    /// Flows kept simultaneously open (the occupancy target).
    pub concurrency: usize,
    /// Total distinct flows generated across the trace lifetime. Must be
    /// ≥ `concurrency`; the surplus is what churn turns over.
    pub total_flows: usize,
    /// Zipf exponent for flow sizes (≈1.1–1.3 matches backbone traces).
    pub alpha: f64,
    /// Smallest flow (application bytes).
    pub min_flow_bytes: usize,
    /// Largest flow (application bytes).
    pub max_flow_bytes: usize,
    /// Per-round probability that a random open flow is cut short and
    /// replaced early — churn beyond natural completion. 0.0 disables.
    pub churn: f64,
}

impl Default for HeavyTailConfig {
    fn default() -> Self {
        HeavyTailConfig {
            seed: 1,
            concurrency: 64,
            total_flows: 256,
            alpha: 1.2,
            min_flow_bytes: 256,
            max_flow_bytes: 512 * 1024,
            churn: 0.02,
        }
    }
}

/// One open flow's progress.
#[derive(Debug)]
struct OpenFlow {
    client: SocketAddrV4,
    server: SocketAddrV4,
    isn: u32,
    total: usize,
    sent: usize,
}

/// Seeded heavy-tail generator: a closed-loop flow population with Zipf
/// sizes and configurable replacement churn.
#[derive(Debug)]
pub struct HeavyTailGenerator {
    config: HeavyTailConfig,
    rng: StdRng,
    zipf: ZipfSizes,
}

impl HeavyTailGenerator {
    /// Build from a config.
    pub fn new(config: HeavyTailConfig) -> Self {
        let zipf = ZipfSizes::new(
            config.alpha,
            config.min_flow_bytes,
            config.max_flow_bytes,
            64,
        );
        HeavyTailGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            zipf,
        }
    }

    fn open_flow(&mut self, id: usize) -> OpenFlow {
        // Disjoint from benign (10.x) and oracle decoy (10.77.x) space.
        let client = SocketAddrV4::new(
            Ipv4Addr::new(
                172,
                (16 + (id >> 16) % 16) as u8,
                ((id >> 8) & 0xff) as u8,
                (id & 0xff) as u8,
            ),
            1025 + (id % 60000) as u16,
        );
        let server = SocketAddrV4::new(
            Ipv4Addr::new(192, 168, 1, 1 + (id % 32) as u8),
            if id % 3 == 0 { 443 } else { 80 },
        );
        OpenFlow {
            client,
            server,
            isn: self.rng.gen(),
            total: self.zipf.sample(&mut self.rng),
            sent: 0,
        }
    }

    /// Generate the trace: open `concurrency` flows, then round-robin one
    /// segment per open flow per round; completed (or churned-out) flows
    /// close with a FIN and are replaced until `total_flows` have run.
    pub fn generate(&mut self) -> Trace {
        let c = self.config;
        let concurrency = c.concurrency.max(1);
        let total_flows = c.total_flows.max(concurrency);
        let mut t = 0u64;
        let mut pkts: Vec<TracePacket> = Vec::new();
        let mut open: Vec<OpenFlow> = Vec::with_capacity(concurrency);
        let mut started = 0usize;

        let syn = |f: &OpenFlow, t: &mut u64, pkts: &mut Vec<TracePacket>| {
            let frame = TcpPacketSpec::between(f.client, f.server)
                .seq(f.isn)
                .flags(TcpFlags::SYN)
                .build();
            *t += 1;
            pkts.push(TracePacket::new(*t, ip_of_frame(&frame).to_vec()));
        };

        while started < concurrency.min(total_flows) {
            let f = self.open_flow(started);
            syn(&f, &mut t, &mut pkts);
            open.push(f);
            started += 1;
        }

        // Payload filler: deterministic lowercase text, signature-free.
        let filler: Vec<u8> = (0..MSS).map(|i| b'a' + (i % 26) as u8).collect();

        while !open.is_empty() {
            // Churn: cut one random open flow short this round.
            if c.churn > 0.0 && self.rng.gen_bool(c.churn.min(1.0)) {
                let i = self.rng.gen_range(0..open.len());
                open[i].total = open[i].sent;
            }
            let mut i = 0;
            while i < open.len() {
                let f = &mut open[i];
                if f.sent < f.total {
                    let s = (f.total - f.sent).min(MSS);
                    let frame = TcpPacketSpec::between(f.client, f.server)
                        .seq(f.isn.wrapping_add(1).wrapping_add(f.sent as u32))
                        .flags(TcpFlags::ACK.union(TcpFlags::PSH))
                        .payload(&filler[..s])
                        .build();
                    t += 1;
                    pkts.push(TracePacket::new(t, ip_of_frame(&frame).to_vec()));
                    f.sent += s;
                    i += 1;
                    continue;
                }
                // Finished: FIN, then replace (fresh 5-tuple) if the budget
                // allows, else drop from the open set.
                let fin = TcpPacketSpec::between(f.client, f.server)
                    .seq(f.isn.wrapping_add(1).wrapping_add(f.sent as u32))
                    .flags(TcpFlags::FIN.union(TcpFlags::ACK))
                    .build();
                t += 1;
                pkts.push(TracePacket::new(t, ip_of_frame(&fin).to_vec()));
                if started < total_flows {
                    let fresh = self.open_flow(started);
                    syn(&fresh, &mut t, &mut pkts);
                    open[i] = fresh;
                    started += 1;
                    i += 1;
                } else {
                    open.swap_remove(i);
                }
            }
        }
        Trace::from_packets(pkts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::parse::parse_ipv4;
    use std::collections::HashSet;

    #[test]
    fn deterministic_given_seed() {
        let cfg = HeavyTailConfig {
            concurrency: 16,
            total_flows: 48,
            max_flow_bytes: 16 * 1024,
            ..Default::default()
        };
        let a = HeavyTailGenerator::new(cfg).generate();
        let b = HeavyTailGenerator::new(cfg).generate();
        assert_eq!(a, b);
        assert_ne!(
            a,
            HeavyTailGenerator::new(HeavyTailConfig { seed: 2, ..cfg }).generate()
        );
    }

    #[test]
    fn all_packets_parse_and_flow_count_matches() {
        let cfg = HeavyTailConfig {
            concurrency: 8,
            total_flows: 40,
            max_flow_bytes: 8 * 1024,
            ..Default::default()
        };
        let t = HeavyTailGenerator::new(cfg).generate();
        let mut keys = HashSet::new();
        for p in &t.packets {
            parse_ipv4(&p.data).expect("generated packet must parse");
            keys.insert(p.flow_key().expect("tcp packet has a flow key"));
        }
        assert_eq!(keys.len(), 40, "every budgeted flow must appear");
    }

    #[test]
    fn zipf_sizes_are_heavy_tailed() {
        let z = ZipfSizes::new(1.2, 256, 1 << 20, 64);
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<usize> = (0..4000).map(|_| z.sample(&mut rng)).collect();
        let total: u64 = draws.iter().map(|&d| d as u64).sum();
        let mut sorted = draws.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted[..draws.len() / 10].iter().map(|&d| d as u64).sum();
        assert!(
            top10 * 2 > total,
            "top 10% of flows must carry >50% of bytes (got {top10}/{total})"
        );
        // Mice dominate the count.
        let mice = draws.iter().filter(|&&d| d < 4096).count();
        assert!(mice * 2 > draws.len(), "most flows are mice ({mice})");
    }

    #[test]
    fn churn_turns_over_the_population() {
        // With heavy churn, the same total-flow budget drains in far fewer
        // packets: flows are cut short and replaced.
        let base = HeavyTailConfig {
            concurrency: 16,
            total_flows: 64,
            max_flow_bytes: 64 * 1024,
            churn: 0.0,
            ..Default::default()
        };
        let quiet = HeavyTailGenerator::new(base).generate();
        let churny = HeavyTailGenerator::new(HeavyTailConfig { churn: 0.9, ..base }).generate();
        assert!(
            churny.len() < quiet.len(),
            "churn must shorten flows ({} !< {})",
            churny.len(),
            quiet.len()
        );
    }

    #[test]
    fn timestamps_nondecreasing() {
        let t = HeavyTailGenerator::new(HeavyTailConfig {
            concurrency: 4,
            total_flows: 12,
            max_flow_bytes: 4096,
            ..Default::default()
        })
        .generate();
        for w in t.packets.windows(2) {
            assert!(w[0].ts_micros <= w[1].ts_micros);
        }
    }
}
