//! Pluggable live packet sources for the `sd serve` daemon.
//!
//! A [`PacketSource`] is the daemon's intake: something that hands over
//! raw IPv4 packets one at a time, with a bounded wait so the serve loop
//! can interleave control work (signal flags, telemetry publishing, rule
//! reloads) between packets even when the wire is quiet.
//!
//! Two implementations ship:
//!
//! * [`LoopbackSource`] — an in-process bounded channel. The producing
//!   side ([`LoopbackHandle`]) is `Clone + Send`, so tests and the soak
//!   harness drive the daemon at line rate from another thread with zero
//!   I/O, and dropping every handle gives the daemon a deterministic
//!   end-of-stream. This is the source CI runs.
//! * `AfPacketSource` (feature `afpacket`, Linux only) — a real capture
//!   socket; see the `afpacket` module (compiled only with that feature).

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

use crate::trace::Trace;

/// What one [`PacketSource::poll`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceEvent {
    /// The caller's buffer now holds one raw IPv4 packet observed at
    /// `tick` (source-defined units; the loopback passes the producer's
    /// tick through, a capture source uses its packet counter).
    Packet {
        /// Engine tick to process the packet at.
        tick: u64,
    },
    /// No packet arrived within the timeout; the source is still open.
    /// The serve loop uses these gaps for control work.
    Idle,
    /// The source is exhausted (every producer hung up / the socket
    /// closed) and will never yield another packet.
    Closed,
}

/// A blocking pull-based packet intake. See the module docs.
pub trait PacketSource {
    /// Wait up to `timeout` for the next packet. On `Packet`, `buf` has
    /// been cleared and filled with the raw IPv4 bytes.
    fn poll(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> SourceEvent;

    /// Stable name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Producer half of the in-process loopback source.
///
/// Cloneable and `Send`: any number of generator threads can feed one
/// daemon. The channel is bounded — a producer outrunning the engine
/// blocks (offered-load backpressure), it never buffers unboundedly.
#[derive(Clone)]
pub struct LoopbackHandle {
    tx: SyncSender<(u64, Vec<u8>)>,
}

impl LoopbackHandle {
    /// Offer one packet at `tick`. Returns `false` once the source has
    /// been dropped (the daemon is gone; stop generating).
    pub fn send(&self, tick: u64, packet: &[u8]) -> bool {
        self.tx.send((tick, packet.to_vec())).is_ok()
    }

    /// Offer a whole trace, ticking packets by their index. Returns the
    /// number of packets accepted (short only if the daemon went away).
    pub fn send_trace(&self, trace: &Trace) -> usize {
        for (i, p) in trace.iter_bytes().enumerate() {
            if !self.send(i as u64, p) {
                return i;
            }
        }
        trace.len()
    }
}

/// Consumer half of the in-process loopback source.
pub struct LoopbackSource {
    rx: Receiver<(u64, Vec<u8>)>,
}

impl PacketSource for LoopbackSource {
    fn poll(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> SourceEvent {
        match self.rx.recv_timeout(timeout) {
            Ok((tick, data)) => {
                buf.clear();
                buf.extend_from_slice(&data);
                SourceEvent::Packet { tick }
            }
            Err(RecvTimeoutError::Timeout) => SourceEvent::Idle,
            Err(RecvTimeoutError::Disconnected) => SourceEvent::Closed,
        }
    }

    fn name(&self) -> &'static str {
        "loopback"
    }
}

/// Build a loopback pair with a channel bound of `depth` packets.
pub fn loopback(depth: usize) -> (LoopbackHandle, LoopbackSource) {
    let (tx, rx) = sync_channel(depth.max(1));
    (LoopbackHandle { tx }, LoopbackSource { rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_millis(10);

    #[test]
    fn loopback_delivers_packets_in_order_with_ticks() {
        let (tx, mut src) = loopback(16);
        assert!(tx.send(7, b"abc"));
        assert!(tx.send(9, b"defg"));
        let mut buf = Vec::new();
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 7 });
        assert_eq!(buf, b"abc");
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 9 });
        assert_eq!(buf, b"defg");
        assert_eq!(src.name(), "loopback");
    }

    #[test]
    fn empty_open_source_reports_idle() {
        let (tx, mut src) = loopback(4);
        let mut buf = Vec::new();
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Idle);
        drop(tx);
    }

    #[test]
    fn dropping_every_handle_closes_the_source() {
        let (tx, mut src) = loopback(4);
        let tx2 = tx.clone();
        tx.send(0, b"x");
        drop(tx);
        drop(tx2);
        let mut buf = Vec::new();
        // Already-queued packets still drain before close.
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 0 });
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Closed);
    }

    #[test]
    fn send_trace_ticks_by_index() {
        let trace = Trace::from_packets(vec![
            crate::trace::TracePacket::new(0, vec![1]),
            crate::trace::TracePacket::new(5, vec![2, 2]),
        ]);
        let (tx, mut src) = loopback(8);
        assert_eq!(tx.send_trace(&trace), 2);
        let mut buf = Vec::new();
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 0 });
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 1 });
    }

    #[test]
    fn producer_blocks_at_the_bound_until_consumed() {
        let (tx, mut src) = loopback(1);
        assert!(tx.send(0, b"a"));
        let t = std::thread::spawn(move || {
            // This send blocks until the consumer drains the first packet.
            let ok = tx.send(1, b"b");
            (ok, std::time::Instant::now())
        });
        std::thread::sleep(Duration::from_millis(50));
        let mut buf = Vec::new();
        let drained_at = std::time::Instant::now();
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 0 });
        let (ok, sent_at) = t.join().unwrap();
        assert!(ok);
        assert!(sent_at >= drained_at, "send must have waited for the drain");
        assert_eq!(src.poll(&mut buf, SHORT), SourceEvent::Packet { tick: 1 });
    }
}
