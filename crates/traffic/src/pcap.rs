//! Classic libpcap file I/O.
//!
//! The experiments run on synthetic workloads, but the repro hint calls for
//! trace replay — so traces serialize to the classic pcap format (the fixed
//! 24-byte global header + 16-byte per-record headers) and real captures
//! can be loaded back. Both byte orders are read; files are written
//! little-endian with `LINKTYPE_RAW` (raw IP, 101). Ethernet captures
//! (linktype 1) are accepted on read and the link header stripped, since the
//! engines consume IPv4 packets.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::trace::{Trace, TracePacket};

/// LINKTYPE_RAW: packets start at the IP header.
pub const LINKTYPE_RAW: u32 = 101;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

const MAGIC_LE: u32 = 0xa1b2_c3d4;
const MAGIC_BE: u32 = 0xd4c3_b2a1;

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a pcap file (bad magic).
    BadMagic(u32),
    /// Link type this reader does not understand.
    UnsupportedLinkType(u32),
    /// Truncated record.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(t) => write!(f, "unsupported linktype {t}"),
            PcapError::Truncated => f.write_str("truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Write a trace as a classic little-endian pcap with `LINKTYPE_RAW`.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), PcapError> {
    w.write_all(&MAGIC_LE.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
    for p in &trace.packets {
        let sec = (p.ts_micros / 1_000_000) as u32;
        let usec = (p.ts_micros % 1_000_000) as u32;
        let len = p.data.len() as u32;
        w.write_all(&sec.to_le_bytes())?;
        w.write_all(&usec.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?; // incl_len
        w.write_all(&len.to_le_bytes())?; // orig_len
        w.write_all(&p.data)?;
    }
    Ok(())
}

/// Write a trace to a file path.
pub fn save(path: impl AsRef<Path>, trace: &Trace) -> Result<(), PcapError> {
    let f = File::create(path)?;
    write_trace(BufWriter::new(f), trace)
}

/// Read a classic pcap stream into a trace.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, PcapError> {
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;
    let magic = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes"));
    let big_endian = match magic {
        MAGIC_LE => false,
        MAGIC_BE => true,
        other => return Err(PcapError::BadMagic(other)),
    };
    let read_u32 = |b: &[u8]| -> u32 {
        let arr: [u8; 4] = b.try_into().expect("4 bytes");
        if big_endian {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let linktype = read_u32(&hdr[20..24]);
    if linktype != LINKTYPE_RAW && linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }

    let mut packets = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let sec = read_u32(&rec[0..4]) as u64;
        let usec = read_u32(&rec[4..8]) as u64;
        let incl = read_u32(&rec[8..12]) as usize;
        let mut data = vec![0u8; incl];
        r.read_exact(&mut data).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated
            } else {
                PcapError::Io(e)
            }
        })?;
        if linktype == LINKTYPE_ETHERNET {
            if data.len() < 14 {
                return Err(PcapError::Truncated);
            }
            data.drain(..14);
        }
        packets.push(TracePacket::new(sec * 1_000_000 + usec, data));
    }
    Ok(Trace::from_packets(packets))
}

/// Read a trace from a file path.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, PcapError> {
    let f = File::open(path)?;
    read_trace(BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec};

    fn sample_trace() -> Trace {
        let packets = (0..5u16)
            .map(|i| {
                let f = TcpPacketSpec::new(&format!("10.0.0.1:{}", 1000 + i), "10.0.0.2:80")
                    .payload(format!("packet {i}").as_bytes())
                    .build();
                TracePacket::new(i as u64 * 1_000_000 + 42, ip_of_frame(&f).to_vec())
            })
            .collect();
        Trace::from_packets(packets)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        match read_trace(&buf[..]) {
            Err(PcapError::BadMagic(0)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_detected() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_trace(&buf[..]), Err(PcapError::Truncated)));
    }

    #[test]
    fn big_endian_files_read() {
        // Hand-build a big-endian header + one record.
        let trace = sample_trace();
        let pkt = &trace.packets[0];
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_be_bytes()); // BE writer stores swapped
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes()); // sec
        buf.extend_from_slice(&42u32.to_be_bytes()); // usec
        buf.extend_from_slice(&(pkt.data.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(pkt.data.len() as u32).to_be_bytes());
        buf.extend_from_slice(&pkt.data);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.packets[0].data, pkt.data);
        assert_eq!(back.packets[0].ts_micros, 42);
    }

    #[test]
    fn ethernet_linktype_strips_header() {
        let f = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
            .payload(b"eth")
            .build();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_LE.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(f.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(f.len() as u32).to_le_bytes());
        buf.extend_from_slice(&f);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.packets[0].data, ip_of_frame(&f));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sd-traffic-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        let trace = sample_trace();
        save(&path, &trace).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }
}
