//! The victim model.
//!
//! An evasion only matters if the attack still *works*: the victim's stack
//! must reconstruct the attacker's payload byte-for-byte. Every evasion
//! strategy in [`crate::evasion`] is verified against this model — a
//! configurable receiving stack that drops what a real path+host would drop
//! (expired TTLs, bad checksums), defragments and reassembles with the
//! victim's overlap policy, and exposes the application byte stream.

use std::net::Ipv4Addr;

use sd_packet::ipv4::Ipv4Packet;
use sd_packet::parse::{parse_ipv4, Transport};
use sd_packet::tcp::TcpSegment;
use sd_reassembly::defrag::DefragResult;
use sd_reassembly::{Defragmenter, OverlapPolicy, TcpStreamReassembler, UrgentSemantics};

/// How the victim's environment and stack behave.
#[derive(Debug, Clone, Copy)]
pub struct VictimConfig {
    /// Overlap resolution of the victim's TCP/IP stack.
    pub policy: OverlapPolicy,
    /// Router hops between the IPS vantage point and the victim: packets
    /// whose TTL is below this never arrive (the low-TTL chaff evasion
    /// works precisely when the IPS's `min_ttl` floor is smaller).
    pub hops_to_victim: u8,
    /// Victim verifies TCP checksums (all real stacks do).
    pub verify_checksums: bool,
    /// How the victim's stack delivers urgent octets.
    pub urgent: UrgentSemantics,
}

impl Default for VictimConfig {
    fn default() -> Self {
        VictimConfig {
            policy: OverlapPolicy::First,
            hops_to_victim: 4,
            verify_checksums: true,
            urgent: UrgentSemantics::DiscardOne,
        }
    }
}

/// Feed IPv4 packets to the victim at `server`; returns the application
/// byte stream its TCP stack delivers for the attacker→server direction.
pub fn receive_stream(
    packets: impl IntoIterator<Item = impl AsRef<[u8]>>,
    config: VictimConfig,
    server: (Ipv4Addr, u16),
) -> Vec<u8> {
    let mut defrag = Defragmenter::new(config.policy);
    let mut stream = TcpStreamReassembler::new(config.policy);
    let mut out = Vec::new();

    for (tick, pkt) in packets.into_iter().enumerate() {
        let pkt = pkt.as_ref();
        // Path model: TTL decremented once per hop; expired packets vanish.
        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            continue;
        };
        if ip.ttl() < config.hops_to_victim {
            continue;
        }
        // Victim defragments with its own policy.
        let datagram: std::borrow::Cow<'_, [u8]> = match defrag.push(pkt, tick as u64) {
            Ok(DefragResult::PassThrough) => std::borrow::Cow::Borrowed(pkt),
            Ok(DefragResult::Complete(v)) => std::borrow::Cow::Owned(v),
            _ => continue,
        };
        let Ok(parsed) = parse_ipv4(&datagram) else {
            continue;
        };
        let Some(ipr) = parsed.ipv4 else { continue };
        let Transport::Tcp(info) = parsed.transport else {
            continue;
        };
        if (ipr.dst, info.repr.dst_port) != server {
            continue;
        }
        if config.verify_checksums {
            let seg_bytes = &datagram[Ipv4Packet::new_unchecked(&datagram[..]).header_len()..];
            let Ok(seg) = TcpSegment::new_checked(seg_bytes) else {
                continue;
            };
            if !seg.verify_checksum(ipr.src, ipr.dst) {
                continue;
            }
        }
        if info.repr.flags.rst() {
            // A real stack aborts on RST: nothing sent afterwards is
            // delivered. This matters for model consistency — the fast
            // path reclaims per-flow counters on RST, which would be
            // exploitable only if data could still arrive afterwards.
            stream.on_rst();
        }
        if stream.is_reset() {
            continue;
        }
        if info.repr.flags.syn() {
            stream.on_syn(info.repr.seq);
        }
        let data_seq = if info.repr.flags.syn() {
            info.repr.seq + 1u32
        } else {
            info.repr.seq
        };
        if let Some(skip) = config
            .urgent
            .discarded_seq(&info.repr, data_seq, info.payload.len())
        {
            stream.skip_at(skip);
        }
        stream.push(data_seq, info.payload);
        stream.drain_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
    use sd_packet::tcp::TcpFlags;

    const SERVER: &str = "10.0.0.2";

    fn server() -> (Ipv4Addr, u16) {
        (SERVER.parse().unwrap(), 80)
    }

    fn pkt(seq: u32, flags: TcpFlags, payload: &[u8], ttl: u8) -> Vec<u8> {
        let f = TcpPacketSpec::new("10.0.0.1:4000", &format!("{SERVER}:80"))
            .seq(seq)
            .flags(flags)
            .ttl(ttl)
            .payload(payload)
            .build();
        ip_of_frame(&f).to_vec()
    }

    #[test]
    fn plain_stream_delivered() {
        let packets = [
            pkt(999, TcpFlags::SYN, b"", 64),
            pkt(1000, TcpFlags::ACK, b"hello ", 64),
            pkt(1006, TcpFlags::ACK, b"world", 64),
        ];
        let got = receive_stream(packets.iter(), VictimConfig::default(), server());
        assert_eq!(got, b"hello world");
    }

    #[test]
    fn low_ttl_packets_never_arrive() {
        let packets = [
            pkt(999, TcpFlags::SYN, b"", 64),
            pkt(1000, TcpFlags::ACK, b"CHAFF!", 2), // dies en route (4 hops)
            pkt(1000, TcpFlags::ACK, b"hello!", 64),
        ];
        let got = receive_stream(packets.iter(), VictimConfig::default(), server());
        assert_eq!(got, b"hello!");
    }

    #[test]
    fn bad_checksum_dropped_by_stack() {
        let mut chaff = pkt(1000, TcpFlags::ACK, b"CHAFF!", 64);
        let n = chaff.len() - 1;
        chaff[n] ^= 0xff;
        let packets = [
            pkt(999, TcpFlags::SYN, b"", 64),
            chaff,
            pkt(1000, TcpFlags::ACK, b"hello!", 64),
        ];
        let got = receive_stream(packets.iter(), VictimConfig::default(), server());
        assert_eq!(got, b"hello!");
    }

    #[test]
    fn reverse_direction_ignored() {
        let f = TcpPacketSpec::new(&format!("{SERVER}:80"), "10.0.0.1:4000")
            .seq(1)
            .payload(b"response")
            .build();
        let got = receive_stream(
            [ip_of_frame(&f).to_vec()].iter(),
            VictimConfig::default(),
            server(),
        );
        assert!(got.is_empty());
    }

    #[test]
    fn rst_aborts_delivery() {
        // An attacker who interleaves RSTs (e.g. to reset an IPS's
        // per-flow counters) kills their own connection: nothing after the
        // RST reaches the application, so the "attack" is not an attack.
        let packets = [
            pkt(999, TcpFlags::SYN, b"", 64),
            pkt(1000, TcpFlags::ACK, b"be", 64),
            pkt(1002, TcpFlags::RST, b"", 64),
            pkt(1002, TcpFlags::ACK, b"fore", 64),
        ];
        let got = receive_stream(packets.iter(), VictimConfig::default(), server());
        assert_eq!(got, b"be");
    }

    #[test]
    fn overlap_resolved_by_victim_policy() {
        // Garbage first, then retransmit with real data at same seq.
        let packets = [
            pkt(999, TcpFlags::SYN, b"", 64),
            pkt(1000, TcpFlags::ACK, b"XXXXXX", 64),
            pkt(1000, TcpFlags::ACK, b"hello!", 64),
        ];
        let first = receive_stream(
            packets.iter(),
            VictimConfig {
                policy: OverlapPolicy::First,
                ..Default::default()
            },
            server(),
        );
        assert_eq!(first, b"XXXXXX", "First-policy victim keeps the garbage");
        // A Last-policy victim prefers the retransmission — but both copies
        // arrive in-order here so the first is already delivered; hold it
        // back with a gap to observe the policy.
        let held = [
            pkt(999, TcpFlags::SYN, b"", 64),
            pkt(1001, TcpFlags::ACK, b"XXXXX", 64), // bytes 1..6 buffered
            pkt(1001, TcpFlags::ACK, b"ello!", 64), // conflicting overlap
            pkt(1000, TcpFlags::ACK, b"h", 64),     // plug the hole
        ];
        let last = receive_stream(
            held.iter(),
            VictimConfig {
                policy: OverlapPolicy::Last,
                ..Default::default()
            },
            server(),
        );
        assert_eq!(last, b"hello!");
    }
}
