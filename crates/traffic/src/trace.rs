//! Trace representation.
//!
//! A trace is a time-ordered sequence of IPv4 packets (no link layer — the
//! engines consume IP). Timestamps are microseconds; generators assign them
//! and the pcap reader/writer preserves them. Ground-truth labels (which
//! flows are attacks, carrying which signature) ride alongside so
//! experiments can score detection without re-deriving truth.

use sd_flow::FlowKey;
use sd_packet::parse::parse_ipv4;

/// One captured/generated packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePacket {
    /// Microseconds since trace start.
    pub ts_micros: u64,
    /// The IPv4 packet bytes.
    pub data: Vec<u8>,
}

impl TracePacket {
    /// Convenience constructor.
    pub fn new(ts_micros: u64, data: Vec<u8>) -> Self {
        TracePacket { ts_micros, data }
    }

    /// The packet's canonical flow key, if it parses.
    pub fn flow_key(&self) -> Option<FlowKey> {
        let parsed = parse_ipv4(&self.data).ok()?;
        FlowKey::from_parsed(&parsed).map(|(k, _)| k)
    }
}

/// A time-ordered packet sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Packets in timestamp order.
    pub packets: Vec<TracePacket>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from packets, sorting by timestamp (stable: equal timestamps
    /// keep their relative order, which generators rely on for intra-flow
    /// ordering).
    pub fn from_packets(mut packets: Vec<TracePacket>) -> Self {
        packets.sort_by_key(|p| p.ts_micros);
        Trace { packets }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if there are no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total IP bytes in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.data.len() as u64).sum()
    }

    /// Iterate raw packet byte slices in order (what engines consume).
    pub fn iter_bytes(&self) -> impl Iterator<Item = &[u8]> {
        self.packets.iter().map(|p| p.data.as_slice())
    }

    /// Append another trace's packets, shifting their timestamps to start
    /// after this trace ends, and keeping order.
    pub fn append_after(&mut self, other: Trace) {
        let base = self.packets.last().map_or(0, |p| p.ts_micros + 1);
        self.packets.extend(other.packets.into_iter().map(|mut p| {
            p.ts_micros += base;
            p
        }));
    }

    /// Count distinct flow keys (None-parsing packets excluded).
    pub fn flow_count(&self) -> usize {
        let mut keys: Vec<FlowKey> = self.packets.iter().filter_map(|p| p.flow_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec};

    fn pkt(src_port: u16, ts: u64) -> TracePacket {
        let f = TcpPacketSpec::new(&format!("10.0.0.1:{src_port}"), "10.0.0.2:80")
            .payload(b"x")
            .build();
        TracePacket::new(ts, ip_of_frame(&f).to_vec())
    }

    #[test]
    fn from_packets_sorts_stably() {
        let t = Trace::from_packets(vec![pkt(3, 5), pkt(1, 2), pkt(2, 5)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.packets[0].ts_micros, 2);
        // Stable: port 3 (inserted first) stays before port 2 at ts=5.
        assert_eq!(t.packets[1].flow_key(), pkt(3, 0).flow_key());
    }

    #[test]
    fn flow_count_dedups_by_connection() {
        let t = Trace::from_packets(vec![pkt(1, 0), pkt(1, 1), pkt(2, 2)]);
        assert_eq!(t.flow_count(), 2);
    }

    #[test]
    fn append_after_shifts_timestamps() {
        let mut a = Trace::from_packets(vec![pkt(1, 10)]);
        let b = Trace::from_packets(vec![pkt(2, 0), pkt(2, 5)]);
        a.append_after(b);
        assert_eq!(a.len(), 3);
        assert!(a.packets[1].ts_micros > 10);
        assert_eq!(a.packets[2].ts_micros - a.packets[1].ts_micros, 5);
    }

    #[test]
    fn totals() {
        let t = Trace::from_packets(vec![pkt(1, 0), pkt(2, 1)]);
        assert!(t.total_bytes() > 80);
        assert_eq!(t.iter_bytes().count(), 2);
        assert!(!t.is_empty());
    }
}
