//! Paced trace replay.
//!
//! Experiments push packets as fast as the engine drains them; a *replay*
//! respects the trace's timestamps (optionally scaled), which is how a
//! capture is turned back into an offered load — and how one finds the
//! speed-up factor at which an engine stops keeping up, the software
//! analogue of the paper's "reasonable cost at 20 Gbps" question.

use std::time::{Duration, Instant};

use crate::trace::Trace;

/// Outcome of one paced replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayReport {
    /// Packets delivered.
    pub packets: u64,
    /// Wall-clock seconds the replay took.
    pub elapsed_secs: f64,
    /// Seconds the replay *should* have taken (trace span ÷ speed).
    pub target_secs: f64,
    /// Total time the engine made the replay late (packets delivered after
    /// their scheduled instant), in seconds — the backlog signal.
    pub lateness_secs: f64,
    /// The largest single-packet lateness observed.
    pub max_lateness_secs: f64,
}

impl ReplayReport {
    /// True when the consumer kept up: aggregate lateness under
    /// `slack_secs`.
    pub fn kept_up(&self, slack_secs: f64) -> bool {
        self.max_lateness_secs <= slack_secs
    }

    /// Achieved speed relative to the trace's own timeline.
    pub fn achieved_speed(&self, span_secs: f64) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            span_secs / self.elapsed_secs
        }
    }
}

/// Replay `trace` at `speed`× its recorded timing, invoking `deliver` for
/// each packet at (or as soon as possible after) its scheduled instant.
///
/// `speed = f64::INFINITY` delivers back-to-back (no sleeping), which is
/// what the batch experiments do; finite speeds sleep between packets.
/// Lateness accrues whenever `deliver` (plus scheduling noise) makes a
/// packet miss its slot — the signal the load-finding loop in the
/// `live_replay` example bisects on.
pub fn replay<F>(trace: &Trace, speed: f64, mut deliver: F) -> ReplayReport
where
    F: FnMut(&[u8], u64),
{
    assert!(speed > 0.0, "speed must be positive");
    let t0 = trace.packets.first().map_or(0, |p| p.ts_micros);
    let span_micros = trace.packets.last().map_or(0, |p| p.ts_micros - t0);
    let start = Instant::now();
    let mut lateness = 0.0f64;
    let mut max_lateness = 0.0f64;

    for (tick, pkt) in trace.packets.iter().enumerate() {
        if speed.is_finite() {
            let due_micros = (pkt.ts_micros - t0) as f64 / speed;
            let due = Duration::from_micros(due_micros as u64);
            let now = start.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            } else {
                let late = (now - due).as_secs_f64();
                lateness += late;
                max_lateness = max_lateness.max(late);
            }
        }
        deliver(&pkt.data, tick as u64);
    }

    ReplayReport {
        packets: trace.packets.len() as u64,
        elapsed_secs: start.elapsed().as_secs_f64(),
        target_secs: if speed.is_finite() {
            span_micros as f64 / 1e6 / speed
        } else {
            0.0
        },
        lateness_secs: lateness,
        max_lateness_secs: max_lateness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePacket;
    use sd_packet::builder::{ip_of_frame, TcpPacketSpec};

    fn spaced_trace(n: u64, gap_micros: u64) -> Trace {
        let packets = (0..n)
            .map(|i| {
                let f = TcpPacketSpec::new("10.0.0.1:1000", "10.0.0.2:80")
                    .seq(i as u32)
                    .payload(b"x")
                    .build();
                TracePacket::new(i * gap_micros, ip_of_frame(&f).to_vec())
            })
            .collect();
        Trace::from_packets(packets)
    }

    #[test]
    fn infinite_speed_never_sleeps() {
        let trace = spaced_trace(100, 1_000_000); // nominally 99 seconds
        let mut seen = 0u64;
        let report = replay(&trace, f64::INFINITY, |_, _| seen += 1);
        assert_eq!(seen, 100);
        assert_eq!(report.packets, 100);
        assert!(report.elapsed_secs < 1.0, "must not honor timestamps");
        assert_eq!(report.lateness_secs, 0.0);
    }

    #[test]
    fn paced_replay_takes_about_target_time() {
        // 20 packets, 5 ms apart → 95 ms span; at 10× → ~9.5 ms.
        let trace = spaced_trace(20, 5_000);
        let report = replay(&trace, 10.0, |_, _| {});
        assert!(
            report.elapsed_secs >= report.target_secs * 0.9,
            "finished impossibly early: {report:?}"
        );
        assert!(report.kept_up(0.005), "trivial consumer must keep up");
    }

    #[test]
    fn slow_consumer_accrues_lateness() {
        let trace = spaced_trace(10, 1_000); // 1 ms apart
        let report = replay(&trace, 1.0, |_, _| {
            std::thread::sleep(Duration::from_millis(3)) // 3× the budget
        });
        assert!(report.lateness_secs > 0.0);
        assert!(!report.kept_up(0.001));
        assert!(report.max_lateness_secs >= report.lateness_secs / 10.0);
    }

    #[test]
    fn ticks_are_sequential() {
        let trace = spaced_trace(5, 1);
        let mut ticks = Vec::new();
        replay(&trace, f64::INFINITY, |_, t| ticks.push(t));
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_trace_is_fine() {
        let report = replay(&Trace::new(), 1.0, |_, _| unreachable!());
        assert_eq!(report.packets, 0);
    }
}
