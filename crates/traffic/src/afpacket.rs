//! AF_PACKET mmap-ring capture source (Linux, feature `afpacket`).
//!
//! A real-wire [`PacketSource`] backed by a `PF_PACKET` socket with a
//! kernel-shared TPACKET_V2 receive ring: the kernel writes frames into a
//! memory-mapped buffer and flips a status word per frame, so steady-state
//! capture costs zero syscalls — the daemon only enters the kernel via
//! `poll(2)` when the ring is empty. This is the classic pre-AF_XDP fast
//! capture path, and it needs no capture library: the handful of libc
//! symbols involved are declared directly and the ring layout is the
//! stable kernel ABI from `Documentation/networking/packet_mmap.rst`.
//!
//! This module is the one place in the workspace allowed to use `unsafe`
//! (the crate forbids it unless this feature is on): raw sockets and a
//! shared memory map have no safe std equivalent. The surface is kept
//! minimal and every invariant is stated where it is relied on.
//!
//! Requires `CAP_NET_RAW` (or root); construction fails cleanly without
//! it, which is why CI drives the daemon through the loopback source and
//! this backend stays compile-checked only.

use std::io;
use std::time::Duration;

use crate::source::{PacketSource, SourceEvent};

// ---- libc surface -------------------------------------------------------
// Declared directly instead of via the libc crate (the workspace takes no
// external dependencies). Values are the x86-64/aarch64 Linux ABI.

const AF_PACKET: i32 = 17;
const SOCK_RAW: i32 = 3;
const SOCK_CLOEXEC: i32 = 0o2000000;
/// ETH_P_ALL in network byte order (what `socket(2)` and `bind(2)` take).
const ETH_P_ALL_BE: u16 = 0x0003u16.to_be();
const ETHERTYPE_IPV4: u16 = 0x0800;
const SOL_PACKET: i32 = 263;
const PACKET_RX_RING: i32 = 5;
const PACKET_VERSION: i32 = 10;
const TPACKET_V2: i32 = 1;
const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;
const POLLIN: i16 = 0x1;
const TP_STATUS_USER: u32 = 1;
const TP_STATUS_KERNEL: u32 = 0;

#[repr(C)]
struct TpacketReq {
    tp_block_size: u32,
    tp_block_nr: u32,
    tp_frame_size: u32,
    tp_frame_nr: u32,
}

/// `struct tpacket2_hdr` — the per-frame header the kernel writes at the
/// start of every ring frame.
#[repr(C)]
struct Tpacket2Hdr {
    tp_status: u32,
    tp_len: u32,
    tp_snaplen: u32,
    tp_mac: u16,
    tp_net: u16,
    tp_sec: u32,
    tp_nsec: u32,
    tp_vlan_tci: u16,
    tp_vlan_tpid: u16,
    tp_padding: [u8; 4],
}

#[repr(C)]
struct SockaddrLl {
    sll_family: u16,
    sll_protocol: u16,
    sll_ifindex: i32,
    sll_hatype: u16,
    sll_pkttype: u8,
    sll_halen: u8,
    sll_addr: [u8; 8],
}

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const core::ffi::c_void, len: u32)
        -> i32;
    fn bind(fd: i32, addr: *const core::ffi::c_void, len: u32) -> i32;
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    fn close(fd: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn if_nametoindex(name: *const core::ffi::c_char) -> u32;
}

fn last_err(what: &str) -> io::Error {
    let e = io::Error::last_os_error();
    io::Error::new(e.kind(), format!("{what}: {e}"))
}

// ---- configuration ------------------------------------------------------

/// Ring sizing for [`AfPacketSource`]. The defaults give a 4 MiB ring of
/// 2 KiB frames — enough slack to absorb scheduling jitter at 10 GbE
/// while staying far under `rmem` limits.
#[derive(Debug, Clone, Copy)]
pub struct AfPacketConfig {
    /// Bytes per ring frame (header + packet; must hold an MTU frame).
    pub frame_size: usize,
    /// Total frames in the ring.
    pub frame_count: usize,
}

impl Default for AfPacketConfig {
    fn default() -> Self {
        AfPacketConfig {
            frame_size: 2048,
            frame_count: 2048,
        }
    }
}

// ---- the source ---------------------------------------------------------

/// A live AF_PACKET capture source. See the module docs.
pub struct AfPacketSource {
    fd: i32,
    ring: *mut u8,
    ring_len: usize,
    frame_size: usize,
    frame_count: usize,
    /// Next frame slot to inspect (the kernel fills the ring round-robin
    /// in order, so a single cursor visits frames exactly as they become
    /// ready).
    next_frame: usize,
    /// Packets delivered so far — doubles as the engine tick.
    packets: u64,
}

// SAFETY: the raw ring pointer is owned exclusively by this struct (the
// mapping is created here and unmapped in Drop, never aliased), so moving
// the whole source to another thread is sound.
unsafe impl Send for AfPacketSource {}

impl AfPacketSource {
    /// Open a capture socket on `interface` (e.g. `"eth0"`), set up the
    /// mmap ring, and start receiving. Fails with the OS error when the
    /// process lacks `CAP_NET_RAW`, the interface does not exist, or ring
    /// memory is refused.
    pub fn open(interface: &str, config: AfPacketConfig) -> io::Result<AfPacketSource> {
        let frame_size = config.frame_size.next_power_of_two().max(512);
        let frame_count = config.frame_count.next_power_of_two().max(8);
        // Blocks are page-sized multiples of the frame size holding an
        // integral number of frames; both sizes are powers of two by the
        // clamps above, so the division is exact.
        let block_size = frame_size.max(4096);
        let frames_per_block = block_size / frame_size;
        let block_nr = (frame_count / frames_per_block).max(1);
        let req = TpacketReq {
            tp_block_size: block_size as u32,
            tp_block_nr: block_nr as u32,
            tp_frame_size: frame_size as u32,
            tp_frame_nr: (block_nr * frames_per_block) as u32,
        };
        let frame_count = req.tp_frame_nr as usize;

        // SAFETY: plain syscall; the fd is checked and owned below.
        let fd = unsafe { socket(AF_PACKET, SOCK_RAW | SOCK_CLOEXEC, ETH_P_ALL_BE as i32) };
        if fd < 0 {
            return Err(last_err("socket(AF_PACKET)"));
        }
        // From here on, clean up the fd on any failure.
        let guard = FdGuard(fd);

        let version = TPACKET_V2;
        // SAFETY: value points at a live i32 of the advertised size.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_PACKET,
                PACKET_VERSION,
                &version as *const i32 as *const core::ffi::c_void,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc < 0 {
            return Err(last_err("setsockopt(PACKET_VERSION)"));
        }
        // SAFETY: value points at a live TpacketReq of the advertised size.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_PACKET,
                PACKET_RX_RING,
                &req as *const TpacketReq as *const core::ffi::c_void,
                std::mem::size_of::<TpacketReq>() as u32,
            )
        };
        if rc < 0 {
            return Err(last_err("setsockopt(PACKET_RX_RING)"));
        }

        let ring_len = req.tp_block_size as usize * req.tp_block_nr as usize;
        // SAFETY: mapping the ring the kernel just agreed to; length and
        // protections match the setsockopt request.
        let ring = unsafe {
            mmap(
                std::ptr::null_mut(),
                ring_len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        if ring as isize == -1 {
            return Err(last_err("mmap(rx ring)"));
        }

        // Bind to the requested interface so the ring sees only its
        // traffic.
        let name = std::ffi::CString::new(interface)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "interface name has NUL"))?;
        // SAFETY: name is a valid NUL-terminated string.
        let ifindex = unsafe { if_nametoindex(name.as_ptr()) };
        if ifindex == 0 {
            // SAFETY: unmapping exactly the mapping created above.
            unsafe { munmap(ring, ring_len) };
            return Err(last_err("if_nametoindex"));
        }
        let addr = SockaddrLl {
            sll_family: AF_PACKET as u16,
            sll_protocol: ETH_P_ALL_BE,
            sll_ifindex: ifindex as i32,
            sll_hatype: 0,
            sll_pkttype: 0,
            sll_halen: 0,
            sll_addr: [0; 8],
        };
        // SAFETY: addr points at a live SockaddrLl of the advertised size.
        let rc = unsafe {
            bind(
                fd,
                &addr as *const SockaddrLl as *const core::ffi::c_void,
                std::mem::size_of::<SockaddrLl>() as u32,
            )
        };
        if rc < 0 {
            // SAFETY: unmapping exactly the mapping created above.
            unsafe { munmap(ring, ring_len) };
            return Err(last_err("bind(sockaddr_ll)"));
        }

        std::mem::forget(guard); // the source owns the fd now
        Ok(AfPacketSource {
            fd,
            ring: ring as *mut u8,
            ring_len,
            frame_size,
            frame_count,
            next_frame: 0,
            packets: 0,
        })
    }

    /// Pointer to frame `i`'s header. Frames are laid out contiguously
    /// per block; with block_size a multiple of frame_size the flat index
    /// maps directly.
    fn frame_ptr(&self, i: usize) -> *mut Tpacket2Hdr {
        debug_assert!(i < self.frame_count);
        // SAFETY (of the arithmetic): i < frame_count and frame_count *
        // frame_size == ring_len, so the offset stays inside the mapping.
        unsafe { self.ring.add(i * self.frame_size) as *mut Tpacket2Hdr }
    }

    /// Copy the ready frame at `idx` into `buf` as an IPv4 packet, if it
    /// is one; always releases the frame back to the kernel. Returns
    /// whether `buf` was filled.
    fn take_frame(&mut self, idx: usize, buf: &mut Vec<u8>) -> bool {
        let hdr = self.frame_ptr(idx);
        // SAFETY: hdr is in-bounds (frame_ptr) and the kernel has
        // published this frame (status USER was observed via a volatile
        // read before calling). Reads of the header fields are plain loads
        // after the volatile status acquire.
        let (got, status_ptr) = unsafe {
            let h = &*hdr;
            let mac = h.tp_mac as usize;
            let net = h.tp_net as usize;
            let snap = h.tp_snaplen as usize;
            let l2_len = net.saturating_sub(mac);
            let ip_len = snap.saturating_sub(l2_len);
            let mut got = false;
            // Ethertype sits in the last two bytes of the L2 header the
            // kernel parsed for us (tp_net points past it). Read it from
            // the frame rather than trusting a fixed 14-byte header so
            // VLAN-tagged frames are simply skipped instead of mis-sliced.
            if l2_len >= 2 && net + ip_len <= self.frame_size && ip_len > 0 {
                let base = hdr as *const u8;
                let ethertype = u16::from_be_bytes([*base.add(net - 2), *base.add(net - 1)]);
                if ethertype == ETHERTYPE_IPV4 {
                    let data = std::slice::from_raw_parts(base.add(net), ip_len);
                    buf.clear();
                    buf.extend_from_slice(data);
                    got = true;
                }
            }
            (got, std::ptr::addr_of_mut!((*hdr).tp_status))
        };
        // SAFETY: releasing the frame to the kernel; volatile so the
        // store is not elided or reordered past the data reads above.
        unsafe { std::ptr::write_volatile(status_ptr, TP_STATUS_KERNEL) };
        self.next_frame = (idx + 1) % self.frame_count;
        got
    }
}

impl PacketSource for AfPacketSource {
    fn poll(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> SourceEvent {
        loop {
            // Sweep at most one full ring pass for a ready IPv4 frame.
            for _ in 0..self.frame_count {
                let idx = self.next_frame;
                let hdr = self.frame_ptr(idx);
                // SAFETY: in-bounds header; volatile read pairs with the
                // kernel's status publish.
                let status =
                    unsafe { std::ptr::read_volatile(std::ptr::addr_of!((*hdr).tp_status)) };
                if status & TP_STATUS_USER == 0 {
                    break;
                }
                if self.take_frame(idx, buf) {
                    let tick = self.packets;
                    self.packets += 1;
                    return SourceEvent::Packet { tick };
                }
                // Non-IPv4 frame: released, keep sweeping.
            }
            let mut pfd = PollFd {
                fd: self.fd,
                events: POLLIN,
                revents: 0,
            };
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: pfd is a live PollFd; nfds is 1.
            let rc = unsafe { poll(&mut pfd as *mut PollFd, 1, ms) };
            if rc <= 0 {
                // Timeout or EINTR: report idle, the serve loop re-polls.
                return SourceEvent::Idle;
            }
            // Ready: loop back and sweep the ring again.
        }
    }

    fn name(&self) -> &'static str {
        "af-packet"
    }
}

impl Drop for AfPacketSource {
    fn drop(&mut self) {
        // SAFETY: unmapping the mapping created in open(), then closing
        // the fd we own. Both are final uses.
        unsafe {
            munmap(self.ring as *mut core::ffi::c_void, self.ring_len);
            close(self.fd);
        }
    }
}

/// Closes the capture fd if `open` bails out before handing ownership to
/// the source.
struct FdGuard(i32);

impl Drop for FdGuard {
    fn drop(&mut self) {
        // SAFETY: the guard owns the fd until mem::forget.
        unsafe { close(self.0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_without_privileges_fails_cleanly() {
        // With CAP_NET_RAW this would succeed; either way the call must
        // return (never panic or leak) and errors must carry context.
        match AfPacketSource::open("lo", AfPacketConfig::default()) {
            Ok(src) => assert_eq!(src.name(), "af-packet"),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("socket") || msg.contains("bind") || msg.contains("setsockopt"),
                    "error should say which step failed: {msg}"
                );
            }
        }
    }
}
