//! Payload byte models.
//!
//! The probability that a random signature *piece* false-matches benign
//! traffic depends on the byte statistics of that traffic: uniform random
//! bytes give the analytic 256^-p bound, while real traffic is mostly
//! ASCII-ish protocol text with much lower entropy. Experiment E5 measures
//! piece false-match probability under both models; the generator uses the
//! HTTP-like model by default so diversion-rate numbers are not
//! optimistically low.

use rand::Rng;

/// A source of payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadModel {
    /// Uniform random bytes (the analytic worst case for false matches is
    /// actually the *best* case — uniform text matches pieces with
    /// probability ~256^-p).
    Uniform,
    /// HTTP-like protocol text: header tokens, URLs, English-ish words,
    /// occasional binary runs. Lower entropy, realistic repetition.
    HttpLike,
    /// All zero bytes (degenerate floor used in tests and ablations).
    Zeros,
}

/// Common HTTP tokens the HttpLike model samples from; repetition of these
/// across flows is what gives real traffic its low-entropy character.
const TOKENS: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b"HTTP/1.1\r\n",
    b"Host: www.",
    b"Content-Length: ",
    b"Accept-Encoding: gzip, deflate\r\n",
    b"Connection: keep-alive\r\n",
    b"User-Agent: Mozilla/5.0 ",
    b"Cookie: session=",
    b".example.com",
    b"/index.html",
    b"/images/logo.png",
    b"the quick brown fox ",
    b"<html><head><title>",
    b"</div></body></html>",
    b"200 OK\r\n",
    b"charset=utf-8\r\n",
    b"0123456789abcdef",
];

impl PayloadModel {
    /// Fill `out` with `len` bytes drawn from the model.
    pub fn fill(self, rng: &mut impl Rng, len: usize, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(len);
        match self {
            PayloadModel::Uniform => {
                for _ in 0..len {
                    out.push(rng.gen());
                }
            }
            PayloadModel::Zeros => out.resize(len, 0),
            PayloadModel::HttpLike => {
                while out.len() < len {
                    if rng.gen_bool(0.75) {
                        let tok = TOKENS[rng.gen_range(0..TOKENS.len())];
                        out.extend_from_slice(tok);
                    } else if rng.gen_bool(0.9) {
                        // A word of printable characters.
                        let n = rng.gen_range(2..10);
                        for _ in 0..n {
                            out.push(rng.gen_range(0x61..0x7b)); // a-z
                        }
                        out.push(b' ');
                    } else {
                        // A short binary run (images, compressed bodies).
                        let n = rng.gen_range(4..24);
                        for _ in 0..n {
                            out.push(rng.gen());
                        }
                    }
                }
                out.truncate(len);
            }
        }
    }

    /// Allocate and fill `len` bytes.
    pub fn generate(self, rng: &mut impl Rng, len: usize) -> Vec<u8> {
        let mut v = Vec::new();
        self.fill(rng, len, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        for model in [
            PayloadModel::Uniform,
            PayloadModel::HttpLike,
            PayloadModel::Zeros,
        ] {
            for len in [0usize, 1, 7, 100, 1460] {
                assert_eq!(model.generate(&mut rng, len).len(), len, "{model:?}/{len}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = PayloadModel::HttpLike.generate(&mut StdRng::seed_from_u64(9), 500);
        let b = PayloadModel::HttpLike.generate(&mut StdRng::seed_from_u64(9), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn http_like_is_mostly_printable() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = PayloadModel::HttpLike.generate(&mut rng, 10_000);
        let printable = data
            .iter()
            .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n')
            .count();
        assert!(
            printable as f64 / data.len() as f64 > 0.85,
            "HTTP-like text should be mostly printable ({printable}/10000)"
        );
    }

    #[test]
    fn uniform_has_high_byte_diversity() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = PayloadModel::Uniform.generate(&mut rng, 10_000);
        let mut seen = [false; 256];
        for &b in &data {
            seen[b as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }

    #[test]
    fn zeros_are_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(PayloadModel::Zeros
            .generate(&mut rng, 64)
            .iter()
            .all(|&b| b == 0));
    }
}
