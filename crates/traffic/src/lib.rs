//! # sd-traffic — workloads for the Split-Detect experiments
//!
//! The paper evaluates on captured campus/backbone traces we do not have;
//! this crate substitutes a calibrated, seeded synthetic workload plus a
//! faithful implementation of the Ptacek–Newsham / FragRoute attack suite:
//!
//! * [`trace`] — the trace representation: timestamped IPv4 packets with
//!   ground-truth attack-flow labels,
//! * [`payload`] — payload byte models (HTTP-like text, uniform binary),
//!   which drive the piece false-match probability experiments,
//! * [`benign`] — benign traffic generation with the three statistics the
//!   experiments depend on: empirical packet-size mix, heavy-tailed flow
//!   sizes, and configurable concurrency/interleaving,
//! * [`evasion`] — the attack generator: one attack conversation carrying a
//!   signature, transformed by each evasion strategy (tiny segments, tiny
//!   and overlapping fragments, reordering, duplication, inconsistent
//!   retransmission, bad-checksum and low-TTL chaff),
//! * [`victim`] — the victim model used to *verify* every generated evasion
//!   still delivers its payload to the target stack (an evasion that fails
//!   to attack is not an evasion),
//! * [`heavytail`] — Zipf-sized, high-churn flow populations for the
//!   flow-state-at-occupancy sweeps (E20),
//! * [`mixer`] — interleaves benign and attack flows into labelled traces,
//! * [`stats`] — size-mix / flow-structure / payload-entropy statistics of
//!   any trace, making the generator's calibration claims checkable,
//! * [`rulegen`] — seeded Snort-subset rule-corpus generator (families
//!   with shared content prefixes, text/hex alphabet mixes, realistic
//!   length distributions) for the 1k/10k-rule scale work,
//! * [`replay`] — paced (timestamp-respecting) trace replay, for turning a
//!   capture back into an offered load,
//! * [`pcap`] — classic libpcap file I/O so real captures can be swapped in
//!   for the synthetic workloads,
//! * [`source`] — pluggable live packet sources for the `sd serve` daemon
//!   (in-process loopback; AF_PACKET mmap ring behind the `afpacket`
//!   feature).

// The afpacket capture backend is the single sanctioned unsafe island in
// the workspace (raw sockets + a kernel-shared mmap ring have no safe std
// equivalent); everything else stays forbidden.
#![cfg_attr(not(feature = "afpacket"), forbid(unsafe_code))]
#![warn(missing_docs)]

#[cfg(all(feature = "afpacket", target_os = "linux"))]
pub mod afpacket;
pub mod benign;
pub mod evasion;
pub mod heavytail;
pub mod mixer;
pub mod payload;
pub mod pcap;
pub mod replay;
pub mod rulegen;
pub mod source;
pub mod stats;
pub mod trace;
pub mod victim;

pub use benign::{BenignConfig, BenignGenerator};
pub use evasion::{AttackSpec, EvasionStrategy};
pub use heavytail::{HeavyTailConfig, HeavyTailGenerator, ZipfSizes};
pub use mixer::LabeledTrace;
pub use payload::PayloadModel;
pub use rulegen::{generate_rule_corpus, RuleCorpusConfig};
pub use source::{loopback, LoopbackHandle, LoopbackSource, PacketSource, SourceEvent};
pub use trace::{Trace, TracePacket};
pub use victim::VictimConfig;
