//! Matcher-kind equivalence over adversarial traces.
//!
//! The fast-path scan engine comes in three builds — the dense DFA, the
//! byte-class compressed table, and the compressed table behind the
//! start-state skip prefilter — and the compression/prefilter work is
//! only sound if all three are *observationally identical*: same alerts,
//! same divert decisions, same accounting, on every wire input. The unit
//! and property tests check the matchers agree on raw byte strings; this
//! suite checks the full engines agree on the oracle's adversarial
//! traces, where the payload arrives fragmented, overlapped, chaffed and
//! out of order.
//!
//! Stats are compared whole except for the two fields that *describe* the
//! matcher (`matcher`, `automaton_bytes`) — everything observable about
//! the traffic must match bit for bit.

use sd_ips::api::run_trace;
use sd_ips::{Alert, Signature, SignatureSet};
use sd_oracle::{CompiledTrace, TraceProgram, ORACLE_SIGNATURE};
use splitdetect::{
    MatcherKind, ShardedSplitDetect, SplitDetect, SplitDetectConfig, SplitDetectStats,
};

/// The pinned regression traces from `regression.rs`: shrunk reproducers
/// of real engine bugs, i.e. exactly the wire shapes that have fooled
/// this engine before.
const PINNED: [&str; 3] = [
    "# split-detect fuzz trace\n\
     seed 77\n\
     policy first\n\
     prefix 40\n\
     suffix 30\n\
     mutate split-sig 9\n\
     mutate frag 0 24\n",
    "# split-detect fuzz trace\n\
     seed 13968259953709020894\n\
     policy first\n\
     prefix 1\n\
     suffix 2\n\
     mutate chaff-cksum 1501928558060025601\n\
     mutate frag 3759307373701782754 43\n",
    "# split-detect fuzz trace\n\
     seed 5770459859425060368\n\
     policy linux\n\
     prefix 1\n\
     suffix 2\n\
     mutate retransmit-bad 9843630119496533149\n\
     mutate frag-overlap 71580601167850740\n",
];

fn signatures() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("oracle-evil", ORACLE_SIGNATURE)])
}

fn config_for(compiled: &CompiledTrace, kind: MatcherKind) -> SplitDetectConfig {
    SplitDetectConfig {
        slow_path_policy: compiled.victim.policy,
        fastpath_matcher: kind,
        ..Default::default()
    }
}

/// Sort key making alert lists comparable: flow, signature, offset, stage.
fn alert_keys(alerts: &[Alert]) -> Vec<(sd_flow::FlowKey, usize, u64, u8)> {
    let mut keys: Vec<_> = alerts
        .iter()
        .map(|a| (a.flow, a.signature, a.offset, a.source as u8))
        .collect();
    keys.sort_unstable();
    keys
}

/// Blank out the fields that legitimately differ between matcher builds.
fn normalized(mut stats: SplitDetectStats) -> SplitDetectStats {
    stats.matcher = MatcherKind::Dense;
    stats.automaton_bytes = 0;
    stats
}

fn run_single(
    compiled: &CompiledTrace,
    kind: MatcherKind,
) -> (Vec<(sd_flow::FlowKey, usize, u64, u8)>, SplitDetectStats) {
    let mut engine = SplitDetect::with_config(signatures(), config_for(compiled, kind))
        .expect("oracle config is admissible");
    let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
    (alert_keys(&alerts), engine.stats())
}

fn assert_kinds_agree(compiled: &CompiledTrace, label: &str) {
    let (dense_alerts, dense_stats) = run_single(compiled, MatcherKind::Dense);
    for kind in [MatcherKind::Classed, MatcherKind::ClassedPrefilter] {
        let (alerts, stats) = run_single(compiled, kind);
        assert_eq!(
            alerts, dense_alerts,
            "{label}: {kind} alerts diverge from dense"
        );
        assert_eq!(
            normalized(stats),
            normalized(dense_stats),
            "{label}: {kind} stats diverge from dense"
        );
    }
}

#[test]
fn pinned_regressions_agree_across_matchers() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        // The pins must keep their teeth: each one delivers the signature
        // and the engine alerts, so the agreement below is about real
        // detections, not three engines all saying nothing.
        let (dense_alerts, _) = run_single(&compiled, MatcherKind::Dense);
        assert!(
            !dense_alerts.is_empty(),
            "pin {i} no longer triggers any alert"
        );
        assert_kinds_agree(&compiled, &format!("pin {i}"));
    }
}

#[test]
fn random_adversarial_programs_agree_across_matchers() {
    for seed in 0..48u64 {
        let compiled = TraceProgram::random(seed).compile();
        assert_kinds_agree(&compiled, &format!("random program seed {seed}"));
    }
}

#[test]
fn sharded_engines_agree_across_matchers() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        let (dense_alerts, _) = run_single(&compiled, MatcherKind::Dense);
        for kind in MatcherKind::ALL {
            for shards in [2usize, 4] {
                let mut engine =
                    ShardedSplitDetect::new(signatures(), config_for(&compiled, kind), shards)
                        .expect("oracle config is admissible");
                let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
                assert!(
                    engine.failures().is_empty(),
                    "pin {i}: {kind} x{shards} shard worker failed"
                );
                assert_eq!(
                    alert_keys(&alerts),
                    dense_alerts,
                    "pin {i}: {kind} x{shards} shards diverge from single dense"
                );
            }
        }
    }
}
