//! Matcher-kind equivalence over adversarial traces.
//!
//! The fast-path scan engine comes in six builds — the dense DFA, the
//! byte-class compressed table, the compressed table behind the
//! start-state skip prefilter, the memory-sparse NFA, the sparse NFA
//! behind a Bloom window prefilter, and the tiered hot/cold hybrid — and
//! the compression/prefilter work
//! is only sound if all six are *observationally identical*: same
//! alerts, same divert decisions, same accounting, on every wire input.
//! The unit and property tests check the matchers agree on raw byte
//! strings; this suite checks the full engines agree on the oracle's
//! adversarial traces, where the payload arrives fragmented, overlapped,
//! chaffed and out of order — and does it again at rule-corpus scale,
//! where the representations actually diverge in structure (dedup'd
//! shared prefixes, saturated byte classes, loaded Bloom filters).
//!
//! Stats are compared whole except for the two fields that *describe* the
//! matcher (`matcher`, `automaton_bytes`) — everything observable about
//! the traffic must match bit for bit.

use sd_ips::api::run_trace;
use sd_ips::rules::parse_rules;
use sd_ips::{Alert, Signature, SignatureSet};
use sd_oracle::{CompiledTrace, TraceProgram, ORACLE_SIGNATURE};
use sd_traffic::{generate_rule_corpus, RuleCorpusConfig};
use splitdetect::{
    MatcherKind, ShardedSplitDetect, SplitDetect, SplitDetectConfig, SplitDetectStats, SplitPlan,
};

/// The pinned regression traces from `regression.rs`: shrunk reproducers
/// of real engine bugs, i.e. exactly the wire shapes that have fooled
/// this engine before.
const PINNED: [&str; 3] = [
    "# split-detect fuzz trace\n\
     seed 77\n\
     policy first\n\
     prefix 40\n\
     suffix 30\n\
     mutate split-sig 9\n\
     mutate frag 0 24\n",
    "# split-detect fuzz trace\n\
     seed 13968259953709020894\n\
     policy first\n\
     prefix 1\n\
     suffix 2\n\
     mutate chaff-cksum 1501928558060025601\n\
     mutate frag 3759307373701782754 43\n",
    "# split-detect fuzz trace\n\
     seed 5770459859425060368\n\
     policy linux\n\
     prefix 1\n\
     suffix 2\n\
     mutate retransmit-bad 9843630119496533149\n\
     mutate frag-overlap 71580601167850740\n",
];

fn signatures() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("oracle-evil", ORACLE_SIGNATURE)])
}

fn config_for(compiled: &CompiledTrace, kind: MatcherKind) -> SplitDetectConfig {
    SplitDetectConfig {
        slow_path_policy: compiled.victim.policy,
        fastpath_matcher: kind,
        ..Default::default()
    }
}

/// Sort key making alert lists comparable: flow, signature, offset, stage.
fn alert_keys(alerts: &[Alert]) -> Vec<(sd_flow::FlowKey, usize, u64, u8)> {
    let mut keys: Vec<_> = alerts
        .iter()
        .map(|a| (a.flow, a.signature, a.offset, a.source as u8))
        .collect();
    keys.sort_unstable();
    keys
}

/// Blank out the fields that legitimately differ between matcher builds.
fn normalized(mut stats: SplitDetectStats) -> SplitDetectStats {
    stats.matcher = MatcherKind::Dense;
    stats.automaton_bytes = 0;
    stats
}

fn run_single_with(
    sigs: &SignatureSet,
    compiled: &CompiledTrace,
    kind: MatcherKind,
) -> (Vec<(sd_flow::FlowKey, usize, u64, u8)>, SplitDetectStats) {
    let mut engine = SplitDetect::with_config(sigs.clone(), config_for(compiled, kind))
        .expect("oracle config is admissible");
    let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
    (alert_keys(&alerts), engine.stats())
}

fn run_single(
    compiled: &CompiledTrace,
    kind: MatcherKind,
) -> (Vec<(sd_flow::FlowKey, usize, u64, u8)>, SplitDetectStats) {
    run_single_with(&signatures(), compiled, kind)
}

fn assert_kinds_agree_with(sigs: &SignatureSet, compiled: &CompiledTrace, label: &str) {
    let (dense_alerts, dense_stats) = run_single_with(sigs, compiled, MatcherKind::Dense);
    for kind in MatcherKind::ALL {
        if kind == MatcherKind::Dense {
            continue;
        }
        let (alerts, stats) = run_single_with(sigs, compiled, kind);
        assert_eq!(
            alerts, dense_alerts,
            "{label}: {kind} alerts diverge from dense"
        );
        assert_eq!(
            normalized(stats),
            normalized(dense_stats),
            "{label}: {kind} stats diverge from dense"
        );
    }
}

fn assert_kinds_agree(compiled: &CompiledTrace, label: &str) {
    assert_kinds_agree_with(&signatures(), compiled, label);
}

#[test]
fn pinned_regressions_agree_across_matchers() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        // The pins must keep their teeth: each one delivers the signature
        // and the engine alerts, so the agreement below is about real
        // detections, not three engines all saying nothing.
        let (dense_alerts, _) = run_single(&compiled, MatcherKind::Dense);
        assert!(
            !dense_alerts.is_empty(),
            "pin {i} no longer triggers any alert"
        );
        assert_kinds_agree(&compiled, &format!("pin {i}"));
    }
}

#[test]
fn random_adversarial_programs_agree_across_matchers() {
    for seed in 0..48u64 {
        let compiled = TraceProgram::random(seed).compile();
        assert_kinds_agree(&compiled, &format!("random program seed {seed}"));
    }
}

/// Rules in the scale corpus: trimmed in the debug profile so tier-1
/// stays quick, the full 1k in release (CI runs this suite in release).
const CORPUS_RULES: usize = if cfg!(debug_assertions) { 200 } else { 1000 };

/// A generated corpus as the engine's rule set, with the oracle signature
/// appended so adversarial traces still carry a planted detection.
fn corpus_signatures(rules: usize, seed: u64) -> SignatureSet {
    let text = generate_rule_corpus(&RuleCorpusConfig::sized(rules, seed));
    let set = parse_rules(&text).expect("generated corpus parses cleanly");
    let mut sigs: Vec<Signature> = set
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| Signature::new(format!("corpus-{i}"), r.signature_bytes().to_vec()))
        .collect();
    sigs.push(Signature::new("oracle-evil", ORACLE_SIGNATURE));
    SignatureSet::from_signatures(sigs)
}

/// One plan per representation over the same signature set.
fn all_plans(sigs: &SignatureSet) -> Vec<SplitPlan> {
    MatcherKind::ALL
        .iter()
        .map(|&kind| {
            SplitPlan::compile(
                sigs,
                &SplitDetectConfig {
                    fastpath_matcher: kind,
                    ..Default::default()
                },
            )
            .expect("corpus is admissible")
        })
        .collect()
}

/// The scale version of the equivalence suite: every engine build loaded
/// with a seeded 1k-rule corpus, driven over the pinned regressions and
/// fresh adversarial programs — exactly the traces whose fragments and
/// splits straddle signatures across packet boundaries. At this scale the
/// representations genuinely diverge inside (byte classes saturate, piece
/// dedup kicks in, the Bloom filter carries real load), so agreement here
/// is the proof the knob is safe to turn on a production-sized rule set.
#[test]
fn corpus_scale_engines_agree_across_matchers() {
    let sigs = corpus_signatures(CORPUS_RULES, 0xC0FFEE);
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        assert_kinds_agree_with(&sigs, &program.compile(), &format!("corpus pin {i}"));
    }
    for seed in 100..104u64 {
        let compiled = TraceProgram::random(seed).compile();
        assert_kinds_agree_with(&sigs, &compiled, &format!("corpus random seed {seed}"));
    }
}

/// Plan-level agreement on inputs that straddle the sparse engine's scan
/// chunk alignment: a corpus signature placed at every small offset moves
/// its pieces across the Bloom window and the prefilter's skip loop; the
/// match lists must stay byte-identical in every representation.
#[test]
fn corpus_scale_plans_agree_on_straddling_offsets() {
    let sigs = corpus_signatures(CORPUS_RULES, 0xC0FFEE);
    let probes: Vec<Vec<u8>> = [0usize, CORPUS_RULES / 2, CORPUS_RULES - 1]
        .iter()
        .map(|&want| {
            sigs.iter()
                .find(|(id, _)| *id == want)
                .expect("probe signature exists")
                .1
                .bytes
                .clone()
        })
        .collect();
    let plans = all_plans(&sigs);
    for bytes in &probes {
        for shift in 0..16usize {
            let mut payload = vec![b'.'; shift];
            payload.extend_from_slice(bytes);
            payload.extend_from_slice(b" trailing benign tail bytes");
            let base = plans[0].scan_all(&payload);
            assert!(
                !base.is_empty(),
                "a whole signature must trip its own pieces"
            );
            for (plan, kind) in plans.iter().zip(MatcherKind::ALL).skip(1) {
                assert_eq!(
                    plan.scan_all(&payload),
                    base,
                    "{kind} full-scan diverges at shift {shift}"
                );
                assert_eq!(
                    plan.scan(&payload),
                    plans[0].scan(&payload),
                    "{kind} first-match diverges at shift {shift}"
                );
            }
        }
    }
}

/// The 10k-rule memory ceiling: the sparse representations must cost at
/// most 10% of the dense table on a full-size corpus, with identical
/// structure and identical scan results. Compiling the dense baseline
/// allocates a ~170 MB table, so the check is gated behind
/// `SD_RULES_SCALE=1`; CI's rules-scale job runs it in release.
#[test]
fn sparse_stays_under_ten_percent_of_dense_at_10k_rules() {
    if std::env::var("SD_RULES_SCALE").as_deref() != Ok("1") {
        eprintln!("skipping 10k-rule ceiling check (set SD_RULES_SCALE=1 to run)");
        return;
    }
    let sigs = corpus_signatures(10_000, 42);
    let plans = all_plans(&sigs);
    let dense = &plans[0];
    assert_eq!(dense.matcher_kind(), MatcherKind::Dense);

    let mut payload = b"benign preamble ".to_vec();
    payload.extend_from_slice(&sigs.iter().next().expect("corpus is non-empty").1.bytes);
    payload.extend_from_slice(b" interstitial filler ");
    payload.extend_from_slice(ORACLE_SIGNATURE);
    let base = dense.scan_all(&payload);
    assert!(!base.is_empty());

    for (plan, kind) in plans.iter().zip(MatcherKind::ALL) {
        assert_eq!(
            plan.state_count(),
            dense.state_count(),
            "{kind} must encode the same automaton"
        );
        assert_eq!(
            plan.scan_all(&payload),
            base,
            "{kind} diverges at 10k rules"
        );
        if matches!(kind, MatcherKind::Sparse | MatcherKind::SparseBloom) {
            assert!(
                plan.memory_bytes() * 10 <= dense.memory_bytes(),
                "{kind} is {} B, over 10% of the dense {} B",
                plan.memory_bytes(),
                dense.memory_bytes()
            );
        }
    }

    // The tiered hybrid buys its throughput with a dense hot tier; the
    // budget heuristic must keep the whole table within 2x of plain
    // sparse even at 10k rules (the ceiling E22 and CI enforce).
    let by_kind = |want: MatcherKind| {
        &plans[MatcherKind::ALL
            .iter()
            .position(|&k| k == want)
            .expect("kind is in ALL")]
    };
    let tiered = by_kind(MatcherKind::Tiered);
    let sparse = by_kind(MatcherKind::Sparse);
    assert!(
        tiered.memory_bytes() <= 2 * sparse.memory_bytes(),
        "tiered is {} B, over 2x the sparse {} B at 10k rules",
        tiered.memory_bytes(),
        sparse.memory_bytes()
    );
    let tiers = tiered.tier_stats().expect("tiered plan reports tiers");
    assert!(tiers.hot_states > 0 && tiers.cold_states > 0);
}

#[test]
fn sharded_engines_agree_across_matchers() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        let (dense_alerts, _) = run_single(&compiled, MatcherKind::Dense);
        for kind in MatcherKind::ALL {
            for shards in [2usize, 4] {
                let mut engine =
                    ShardedSplitDetect::new(signatures(), config_for(&compiled, kind), shards)
                        .expect("oracle config is admissible");
                let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
                assert!(
                    engine.failures().is_empty(),
                    "pin {i}: {kind} x{shards} shard worker failed"
                );
                assert_eq!(
                    alert_keys(&alerts),
                    dense_alerts,
                    "pin {i}: {kind} x{shards} shards diverge from single dense"
                );
            }
        }
    }
}
