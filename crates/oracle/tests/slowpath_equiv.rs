//! Asynchronous slow-path equivalence over adversarial traces.
//!
//! The slow path comes in two dispatch modes — inline (the diverted
//! packet is reassembled on the hot thread, the paper's baseline) and
//! the bounded worker pool (packets cross per-worker SPSC lanes and the
//! alerts come back asynchronously). The pool is only sound if, absent
//! shedding, it is *alert-equivalent* to inline dispatch: same alerts on
//! every wire input, for any worker count, in one deterministic order
//! once the run is finished. The unit tests pin this on hand-built
//! flows; this suite pins it on the oracle's adversarial traces, where
//! the payload arrives fragmented, overlapped, chaffed and out of
//! order — exactly the shapes that force traffic through the divert
//! stage and into the slow path.
//!
//! Lanes are provisioned deep (4096 packets) so nothing is shed; each
//! run asserts that precondition before comparing. Stats are compared
//! whole except the two slow-path residency gauges
//! (`slow_state_bytes`, `slow_state_peak_bytes`): the pool reports
//! per-worker sums, which legitimately differ from the single inline
//! reassembler. Everything observable about the traffic — alerts,
//! divert accounting, byte counters — must match bit for bit.

use sd_ips::api::run_trace;
use sd_ips::{Alert, Signature, SignatureSet};
use sd_oracle::{CompiledTrace, TraceProgram, ORACLE_SIGNATURE};
use splitdetect::{ShardedSplitDetect, SplitDetect, SplitDetectConfig, SplitDetectStats};

/// The pinned regression traces from `regression.rs`: shrunk reproducers
/// of real engine bugs, i.e. exactly the wire shapes that have fooled
/// this engine before.
const PINNED: [&str; 3] = [
    "# split-detect fuzz trace\n\
     seed 77\n\
     policy first\n\
     prefix 40\n\
     suffix 30\n\
     mutate split-sig 9\n\
     mutate frag 0 24\n",
    "# split-detect fuzz trace\n\
     seed 13968259953709020894\n\
     policy first\n\
     prefix 1\n\
     suffix 2\n\
     mutate chaff-cksum 1501928558060025601\n\
     mutate frag 3759307373701782754 43\n",
    "# split-detect fuzz trace\n\
     seed 5770459859425060368\n\
     policy linux\n\
     prefix 1\n\
     suffix 2\n\
     mutate retransmit-bad 9843630119496533149\n\
     mutate frag-overlap 71580601167850740\n",
];

/// Lane depth deep enough that no oracle trace can fill a worker lane:
/// shedding would break equivalence by design, so the suite rules it out.
const DEEP_LANES: usize = 4096;

fn signatures() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("oracle-evil", ORACLE_SIGNATURE)])
}

fn config_for(compiled: &CompiledTrace, workers: usize) -> SplitDetectConfig {
    SplitDetectConfig {
        slow_path_policy: compiled.victim.policy,
        slow_path_workers: workers,
        slow_path_lane_depth: DEEP_LANES,
        ..Default::default()
    }
}

/// Sort key making alert lists comparable: flow, signature, offset, stage.
fn alert_keys(alerts: &[Alert]) -> Vec<(sd_flow::FlowKey, usize, u64, u8)> {
    let mut keys: Vec<_> = alerts
        .iter()
        .map(|a| (a.flow, a.signature, a.offset, a.source as u8))
        .collect();
    keys.sort_unstable();
    keys
}

/// Blank out the fields that legitimately differ between dispatch modes.
fn normalized(mut stats: SplitDetectStats) -> SplitDetectStats {
    stats.slow_state_bytes = 0;
    stats.slow_state_peak_bytes = 0;
    stats
}

fn run_single(
    compiled: &CompiledTrace,
    workers: usize,
    label: &str,
) -> (Vec<(sd_flow::FlowKey, usize, u64, u8)>, SplitDetectStats) {
    let mut engine = SplitDetect::with_config(signatures(), config_for(compiled, workers))
        .expect("oracle config is admissible");
    let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
    assert!(
        engine.slow_failures().is_empty(),
        "{label}: slow-path worker failed: {:?}",
        engine.slow_failures()
    );
    let stats = engine.stats();
    assert_eq!(
        stats.divert.shed_packets, 0,
        "{label}: deep lanes must not shed, equivalence precondition broken"
    );
    (alert_keys(&alerts), stats)
}

fn assert_workers_agree(compiled: &CompiledTrace, label: &str) {
    let (inline_alerts, inline_stats) = run_single(compiled, 0, &format!("{label} inline"));
    for workers in [1usize, 2, 4] {
        let sub = format!("{label} {workers}w");
        let (alerts, stats) = run_single(compiled, workers, &sub);
        assert_eq!(
            alerts, inline_alerts,
            "{sub}: pooled alerts diverge from inline"
        );
        assert_eq!(
            normalized(stats),
            normalized(inline_stats),
            "{sub}: pooled stats diverge from inline"
        );
    }
}

#[test]
fn pinned_regressions_agree_across_worker_counts() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        // The pins must keep their teeth: each one delivers the signature
        // and the engine alerts, so the agreement below is about real
        // detections, not every dispatch mode saying nothing.
        let (inline_alerts, _) = run_single(&compiled, 0, &format!("pin {i} inline"));
        assert!(
            !inline_alerts.is_empty(),
            "pin {i} no longer triggers any alert"
        );
        assert_workers_agree(&compiled, &format!("pin {i}"));
    }
}

#[test]
fn random_adversarial_programs_agree_across_worker_counts() {
    for seed in 0..48u64 {
        let compiled = TraceProgram::random(seed).compile();
        assert_workers_agree(&compiled, &format!("random program seed {seed}"));
    }
}

#[test]
fn sharded_engines_agree_across_worker_counts() {
    for (i, text) in PINNED.iter().enumerate() {
        let program = TraceProgram::from_text(text).expect("pinned trace must parse");
        let compiled = program.compile();
        let (inline_alerts, _) = run_single(&compiled, 0, &format!("pin {i} inline"));
        for workers in [1usize, 2, 4] {
            for shards in [2usize, 4] {
                let mut engine =
                    ShardedSplitDetect::new(signatures(), config_for(&compiled, workers), shards)
                        .expect("oracle config is admissible");
                let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
                assert!(
                    engine.failures().is_empty(),
                    "pin {i}: {workers}w x{shards} shard worker failed"
                );
                assert_eq!(
                    alert_keys(&alerts),
                    inline_alerts,
                    "pin {i}: {workers}w x{shards} shards diverge from single inline"
                );
            }
        }
    }
}
