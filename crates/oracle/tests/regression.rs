//! Shrunk reproducers of real bugs the differential oracle found, pinned
//! forever. Each trace below once broke an invariant on the shipping
//! engine; the fix landed with the trace as its regression test.
//!
//! The traces are kept in the replayable `.trace` artifact format — the
//! same text `sd fuzz` writes on failure — so the pin also exercises the
//! parser on real field data.

use sd_oracle::{run_program, EngineTweaks, TraceProgram, Violation};

fn replay_clean(trace: &str) {
    let program = TraceProgram::from_text(trace).expect("pinned trace must parse");
    let outcome = run_program(&program, EngineTweaks::NONE);
    assert!(
        outcome.ok(),
        "pinned regression resurfaced: {:?}\n{}",
        outcome.violations,
        program.to_text()
    );
    assert!(
        outcome.delivered && outcome.split_alerted,
        "pin lost its teeth: the signature no longer reaches the victim \
         (delivered={}, alerted={})",
        outcome.delivered,
        outcome.split_alerted
    );
}

/// Bug 1 (sharded dispatch): the shard hash covered the TCP 5-tuple, but
/// non-first fragments carry no ports — a connection's fragments hashed to
/// a different shard than its stream segments, and sharded verdicts
/// diverged from the single engine. Fixed by hashing the IP pair plus
/// protocol only (`FlowKey::from_ip_pair`). The pin is a synthetic program
/// (the original campaign hit predates the artifact format): a fragmented
/// signature-straddling split is exactly the shape that split one
/// connection across shards.
#[test]
fn sharded_fragment_routing_stays_fixed() {
    replay_clean(
        "# split-detect fuzz trace\n\
         seed 77\n\
         policy first\n\
         prefix 40\n\
         suffix 30\n\
         mutate split-sig 9\n\
         mutate frag 0 24\n",
    );
}

/// Bug 2 (slow-path checksum): the normalizer accepts IP fragments on the
/// promise that L4 checks rerun after reassembly — but the conventional
/// engine (and therefore Split-Detect's slow path) never re-checked the
/// completed datagram. A fragmented bad-checksum garbage twin of the
/// signature segment occupied the sequence range under First while the
/// victim, which verifies after reassembly, dropped it and received the
/// real bytes. Shrunk from 8 mutations to these 2.
#[test]
fn post_defrag_renormalization_stays_fixed() {
    replay_clean(
        "# split-detect fuzz trace\n\
         seed 13968259953709020894\n\
         policy first\n\
         prefix 1\n\
         suffix 2\n\
         mutate chaff-cksum 1501928558060025601\n\
         mutate frag 3759307373701782754 43\n",
    );
}

/// Bug 3 (divert ordering): diversion and the delay line were keyed on the
/// 5-tuple, so a connection's fragments diverted as a *separate* flow and
/// the SYN reached the slow path only later, replayed after the
/// reassembled fragment data — a mid-stream pickup that adopted the wrong
/// stream origin and missed a signature the victim received. Fixed by
/// keying diversion on the IP pair. Shrunk from 3 mutations to these 2.
#[test]
fn divert_key_ordering_stays_fixed() {
    replay_clean(
        "# split-detect fuzz trace\n\
         seed 5770459859425060368\n\
         policy linux\n\
         prefix 1\n\
         suffix 2\n\
         mutate retransmit-bad 9843630119496533149\n\
         mutate frag-overlap 71580601167850740\n",
    );
}

/// The sabotage fixture the oracle's own tests rely on: with the
/// out-of-order rule disabled, the theorem-tight stitch is missed — and
/// the violation is specifically a missed delivery, nothing noisier.
#[test]
fn stitch_requires_the_out_of_order_rule() {
    let trace = "# split-detect fuzz trace\n\
                 seed 12\n\
                 policy first\n\
                 prefix 80\n\
                 suffix 40\n\
                 mutate stitch 0 4\n";
    let program = TraceProgram::from_text(trace).unwrap();
    let outcome = run_program(
        &program,
        EngineTweaks {
            disable_out_of_order: true,
            disable_fragments: false,
        },
    );
    assert!(outcome.delivered, "stitch must still reach the victim");
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissedDelivery { .. })),
        "expected a missed delivery, got {:?}",
        outcome.violations
    );
}
