//! Bounded fuzzing smoke: the oracle's own health check.
//!
//! Three layers: random programs uphold the theorem (proptest), a fixed
//! campaign is clean and bit-for-bit deterministic, and a deliberately
//! sabotaged engine is caught *and* shrunk to a small reproducer — the
//! end-to-end proof that the oracle can find a real miss, not just agree
//! with a correct engine.

use proptest::prelude::*;
use sd_oracle::{
    campaign_signatures, run_campaign, run_program, CampaignConfig, EngineTweaks, TraceProgram,
    CAMPAIGN_CORPUS_RULES,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random program passes the differential check on the shipping
    /// engine: delivery implies detection, sharded equals single, nobody
    /// panics, decoys stay silent.
    #[test]
    fn random_programs_uphold_the_theorem(seed in any::<u64>()) {
        let program = TraceProgram::random(seed);
        let outcome = run_program(&program, EngineTweaks::NONE);
        prop_assert!(
            outcome.ok(),
            "seed {seed}: {:?}\n{}",
            outcome.violations,
            program.to_text()
        );
    }

    /// The `.trace` artifact format is lossless for any random program.
    #[test]
    fn trace_format_round_trips(seed in any::<u64>()) {
        let program = TraceProgram::random(seed);
        let parsed = TraceProgram::from_text(&program.to_text())
            .expect("render output must parse");
        prop_assert_eq!(parsed, program);
    }
}

#[test]
fn fixed_campaign_is_clean_and_deterministic() {
    let config = CampaignConfig {
        iters: 32,
        seed: 9,
        minimize: false,
        tweaks: EngineTweaks::NONE,
        max_failures: 0,
        rules_seed: None,
    };
    let a = run_campaign(config, |_, _| {});
    let b = run_campaign(config, |_, _| {});
    assert!(a.clean(), "campaign found violations: {:?}", a.failures);
    assert_eq!(a.stats, b.stats, "campaigns must be deterministic");
    assert!(a.stats.delivered > 0, "campaign never reached the victim");
    assert_eq!(
        a.stats.split_caught, a.stats.delivered,
        "every delivered signature must be caught"
    );
}

/// Campaigns whose engines carry a generated rule corpus alongside the
/// oracle signature (`--rules-seed`): the ballast must change the
/// automaton the fast path scans with — not ground truth, not any
/// invariant. Pinned after the corpus-parameterized campaigns over
/// rules-seeds 1..=4 (`sd fuzz --rules-seed S`) came back clean.
#[test]
fn corpus_ballast_campaign_is_clean_and_deterministic() {
    let sigs = campaign_signatures(Some(7));
    assert_eq!(
        sigs.len(),
        1 + CAMPAIGN_CORPUS_RULES,
        "ballast corpus must actually load"
    );

    // Each iteration rebuilds seven engines around a 65-signature
    // automaton; keep the debug-profile run short so tier-1 stays fast.
    let config = CampaignConfig {
        iters: if cfg!(debug_assertions) { 6 } else { 24 },
        seed: 9,
        minimize: false,
        tweaks: EngineTweaks::NONE,
        max_failures: 0,
        rules_seed: Some(7),
    };
    let a = run_campaign(config, |_, _| {});
    let b = run_campaign(config, |_, _| {});
    assert!(
        a.clean(),
        "corpus ballast broke an invariant: {:?}",
        a.failures
    );
    assert_eq!(a.stats, b.stats, "ballast campaigns must be deterministic");
    assert!(a.stats.delivered > 0, "campaign never reached the victim");
    assert_eq!(
        a.stats.split_caught, a.stats.delivered,
        "ballast must not erode detection"
    );

    // Same traces, no ballast: the verdict-level statistics agree — the
    // corpus changed the automaton, not the outcome.
    let lone = run_campaign(
        CampaignConfig {
            rules_seed: None,
            ..config
        },
        |_, _| {},
    );
    assert_eq!(a.stats, lone.stats, "ballast must be invisible in verdicts");
}

/// The acceptance gate: disable one fast-path rule, and the fuzzer must
/// find the resulting miss and delta-debug it down to a tiny reproducer
/// that survives a `.trace` round trip.
#[test]
fn sabotaged_engine_is_caught_and_shrunk() {
    let tweaks = EngineTweaks {
        disable_out_of_order: true,
        disable_fragments: false,
    };
    let config = CampaignConfig {
        iters: 64,
        seed: 1,
        minimize: true,
        tweaks,
        max_failures: 1,
        rules_seed: None,
    };
    let result = run_campaign(config, |_, _| {});
    assert!(
        !result.clean(),
        "a sabotaged engine must be caught within the smoke budget"
    );
    let failure = &result.failures[0];
    let repro = failure.reproducer();
    assert!(
        repro.mutations.len() <= 6,
        "shrinker left {} mutations: {}",
        repro.mutations.len(),
        repro.to_text()
    );
    assert!(
        !failure.violations.is_empty(),
        "failure must carry its violations"
    );

    // The artifact a user would replay reproduces the miss byte-for-byte.
    let replayed = TraceProgram::from_text(&repro.to_text()).unwrap();
    assert_eq!(&replayed, repro);
    assert!(
        !run_program(&replayed, tweaks).ok(),
        "replayed reproducer no longer fails"
    );
    // And the *untweaked* engine passes it — the bug is the sabotage.
    assert!(
        run_program(&replayed, EngineTweaks::NONE).ok(),
        "reproducer must implicate the disabled rule, not the engine"
    );
}
