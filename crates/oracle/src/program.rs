//! Adversarial trace programs — the generator grammar of the oracle.
//!
//! A [`TraceProgram`] is a small, fully deterministic attack description:
//! a seed, a victim overlap policy, padding sizes, and an ordered list of
//! [`Mutation`]s. Compiling a program yields the packet sequence a
//! Ptacek–Newsham attacker would emit — segment cuts at random and
//! signature-straddling offsets, IP fragmentation, reordering, duplication,
//! overlapping retransmits with consistent *and* inconsistent bytes,
//! TTL/checksum invalidation, and signature-free decoy flows.
//!
//! Two properties make programs a good fuzzing substrate:
//!
//! 1. **Ground truth is computed, not promised.** Mutation compositions are
//!    not required to preserve payload delivery; the executor asks the
//!    victim model what actually arrived. A composition that breaks the
//!    attack simply makes the detection invariant vacuous for that trace.
//! 2. **Mutations are independent under deletion.** Indices are resolved
//!    modulo the current schedule length and garbage bytes are salted per
//!    mutation (not drawn from a shared stream), so the shrinker can drop
//!    any subset and every surviving mutation still means the same thing.

use std::net::Ipv4Addr;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_packet::builder::{ip_of_frame, TcpPacketSpec};
use sd_packet::frag::fragment_ipv4;
use sd_packet::ipv4::Ipv4Packet;
use sd_packet::tcp::TcpFlags;
use sd_reassembly::OverlapPolicy;
use sd_traffic::victim::VictimConfig;

/// The signature every program plants (20 bytes → pieces 7/7/6 under the
/// default `k = 3`).
pub const ORACLE_SIGNATURE: &[u8] = b"EVIL_SIGNATURE_BYTES";

/// The flow-hash seed every oracle engine pins. Production engines draw a
/// process-random key (collision floods cannot be precomputed there); the
/// oracle *needs* floods to be craftable, so it fixes the key and the
/// [`Mutation::CollisionFlood`] brute force targets it. Pinning also keeps
/// campaigns bit-deterministic.
pub const ORACLE_FLOW_HASH_SEED: u64 = 0x5EED_F00D_CAFE_D00D;

/// Collision floods collide on the low 16 bits of the seeded key hash.
/// Power-of-two table masks nest, so a 16-bit collision shares a probe
/// window with the attack flow in *any* table of ≤ 2^16 slots — the
/// default single-engine table and every smaller per-shard or test table.
const FLOOD_MASK: u64 = (1 << 16) - 1;

/// Honest maximum segment size, matching `sd_traffic::evasion`.
const MSS: usize = 1460;

/// Garbage padding bytes per overlap-stitch sub-segment: with real chunks
/// of at most 5 bytes this keeps every interior sub-segment at
/// `chunk + STITCH_PAD ≥ 15`, above the default admissible small-segment
/// cutoff of 13 — the stitch must not be caught by the *small* rule.
const STITCH_PAD: usize = 12;

/// One primitive attack transformation. `usize` parameters are raw values
/// resolved modulo the relevant bound at application time, so any parameter
/// is valid against any schedule (important for shrinking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Cut the payload at a pseudo-random offset.
    SplitAt {
        /// Raw cut position, resolved modulo the payload length.
        offset: usize,
    },
    /// Cut the payload inside the signature (a signature-straddling
    /// boundary — the cut every per-packet matcher fears).
    SplitInSignature {
        /// Raw in-signature position, resolved modulo the signature length.
        delta: usize,
    },
    /// Swap two schedule entries (reordering).
    Swap {
        /// First entry (resolved modulo the schedule length).
        a: usize,
        /// Second entry (resolved modulo the schedule length).
        b: usize,
    },
    /// Re-send one segment verbatim — an overlapping retransmit with
    /// *consistent* bytes.
    Duplicate {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
    },
    /// Conflicting retransmission of one segment: real and garbage copies
    /// of the same sequence range, ordered so the victim's overlap policy
    /// keeps the real bytes, behind a one-byte hole so the conflict is
    /// resolved in the reassembly buffer.
    InconsistentRetransmit {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
    },
    /// The theorem-tight overlap attack: rewrite one segment as a train of
    /// overlapping segments, each carrying at most `chunk` real bytes
    /// embedded in garbage the victim's policy discards. No packet holds a
    /// whole signature piece, no segment is small — only the sequence
    /// monotonicity rule sees anything.
    OverlapStitch {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
        /// Real bytes per sub-segment, clamped to `3..=5` (below the
        /// shortest piece length).
        chunk: usize,
    },
    /// Insert a garbage twin of one segment with a broken TCP checksum
    /// (the victim's stack drops it; a naive observer scans it).
    BadChecksumChaff {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
    },
    /// Insert a garbage twin of one segment with a TTL that expires before
    /// the victim.
    LowTtlChaff {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
    },
    /// IP-fragment one segment's packet into `unit`-byte fragments
    /// (`unit` need not be a multiple of 8 — the fragmenter rounds down).
    Fragment {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
        /// Raw fragment payload size, clamped to `8..=256`.
        unit: usize,
    },
    /// Fragment one segment and inject a conflicting garbage copy of a
    /// data fragment, ordered so the victim's reassembly keeps the real one.
    OverlapFragment {
        /// Target entry (resolved modulo the schedule length).
        index: usize,
    },
    /// A signature-free decoy connection to a different server,
    /// interleaved with the attack packets.
    Decoy {
        /// Decoy identity (selects endpoints and payload).
        id: usize,
        /// Data segments the decoy sends, clamped to `1..=4`.
        segments: usize,
    },
    /// A collision flood: short-lived flows whose 5-tuples are brute-forced
    /// (under [`ORACLE_FLOW_HASH_SEED`]) to hash into the attack flow's
    /// probe window, filling it and forcing CLOCK evictions. Flood flows
    /// run *before* the attack connection and are victim-invisible
    /// (different server, signature-free filler).
    CollisionFlood {
        /// Colliding flows emitted, clamped to `1..=32`.
        flows: usize,
    },
    /// Heavy-tailed background churn: a seeded
    /// [`sd_traffic::heavytail::HeavyTailGenerator`] population (Zipf flow
    /// sizes, replacement churn) interleaved with the attack packets.
    /// Victim-invisible and signature-free like decoys.
    HeavyTailNoise {
        /// Distinct background flows, clamped to `4..=32`.
        flows: usize,
    },
}

impl Mutation {
    /// Stable name used by the `.trace` text format.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::SplitAt { .. } => "split",
            Mutation::SplitInSignature { .. } => "split-sig",
            Mutation::Swap { .. } => "swap",
            Mutation::Duplicate { .. } => "dup",
            Mutation::InconsistentRetransmit { .. } => "retransmit-bad",
            Mutation::OverlapStitch { .. } => "stitch",
            Mutation::BadChecksumChaff { .. } => "chaff-cksum",
            Mutation::LowTtlChaff { .. } => "chaff-ttl",
            Mutation::Fragment { .. } => "frag",
            Mutation::OverlapFragment { .. } => "frag-overlap",
            Mutation::Decoy { .. } => "decoy",
            Mutation::CollisionFlood { .. } => "collide-flood",
            Mutation::HeavyTailNoise { .. } => "heavytail",
        }
    }

    /// A stable per-mutation salt, so garbage bytes do not depend on the
    /// mutation's position in the program (deletion-stable shrinking).
    fn salt(&self) -> u64 {
        let (tag, x, y) = match *self {
            Mutation::SplitAt { offset } => (1u64, offset as u64, 0),
            Mutation::SplitInSignature { delta } => (2, delta as u64, 0),
            Mutation::Swap { a, b } => (3, a as u64, b as u64),
            Mutation::Duplicate { index } => (4, index as u64, 0),
            Mutation::InconsistentRetransmit { index } => (5, index as u64, 0),
            Mutation::OverlapStitch { index, chunk } => (6, index as u64, chunk as u64),
            Mutation::BadChecksumChaff { index } => (7, index as u64, 0),
            Mutation::LowTtlChaff { index } => (8, index as u64, 0),
            Mutation::Fragment { index, unit } => (9, index as u64, unit as u64),
            Mutation::OverlapFragment { index } => (10, index as u64, 0),
            Mutation::Decoy { id, segments } => (11, id as u64, segments as u64),
            Mutation::CollisionFlood { flows } => (12, flows as u64, 0),
            Mutation::HeavyTailNoise { flows } => (13, flows as u64, 0),
        };
        mix(mix(tag, x), y)
    }
}

fn mix(a: u64, b: u64) -> u64 {
    (a ^ b)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// One adversarial trace, fully determined by its fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProgram {
    /// Base seed: padding contents, decoy payloads and garbage all derive
    /// from it (salted per use).
    pub seed: u64,
    /// The victim stack's overlap policy the attack is crafted against.
    pub policy: OverlapPolicy,
    /// Benign bytes before the signature.
    pub prefix_len: usize,
    /// Benign bytes after the signature.
    pub suffix_len: usize,
    /// The mutation list, applied in order.
    pub mutations: Vec<Mutation>,
}

/// A compiled program: the wire packets plus everything the executor needs
/// to judge the run.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// IPv4 packets in wire order (attack flow with decoys interleaved).
    pub packets: Vec<Vec<u8>>,
    /// The attack stream's application payload (prefix + signature + suffix).
    pub payload: Vec<u8>,
    /// Byte range of [`ORACLE_SIGNATURE`] within `payload`.
    pub sig_range: Range<usize>,
    /// The attacked server endpoint (victim model filter).
    pub server: (Ipv4Addr, u16),
    /// The attacker endpoint.
    pub client: (Ipv4Addr, u16),
    /// The victim stack configuration the program targets.
    pub victim: VictimConfig,
}

/// A scheduled TCP send on the attack flow.
#[derive(Debug, Clone)]
struct Emit {
    /// Stream offset (relative to the first payload byte).
    offset: usize,
    /// Payload bytes on the wire.
    bytes: Vec<u8>,
    /// `bytes` equals `payload[offset..offset + len]` and no invalidation
    /// or fragmentation was applied — such entries are eligible targets for
    /// the retransmit/stitch rewrites.
    pristine: bool,
    /// Break the TCP checksum after building the packet.
    bad_checksum: bool,
    /// TTL override (chaff that dies en route).
    ttl: Option<u8>,
    /// IP fragmentation applied when emitting.
    frag: FragMode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FragMode {
    None,
    /// Tile into fragments of at most this payload size.
    Tiles(usize),
    /// Tile, then inject a conflicting garbage copy of a data fragment.
    Overlap,
}

impl Emit {
    fn real(payload: &[u8], offset: usize, len: usize) -> Emit {
        Emit {
            offset,
            bytes: payload[offset..offset + len].to_vec(),
            pristine: true,
            bad_checksum: false,
            ttl: None,
            frag: FragMode::None,
        }
    }
}

/// Filler bytes that can never contain [`ORACLE_SIGNATURE`] (which has
/// uppercase letters): lowercase alphanumerics plus spacing.
fn filler(salt: u64, len: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ./-";
    let mut rng = StdRng::seed_from_u64(salt);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

/// Unconstrained garbage (chaff and conflicting-copy contents).
fn garbage(salt: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(salt);
    (0..len).map(|_| rng.gen()).collect()
}

impl TraceProgram {
    /// Draw a random program. Deterministic in `seed`; the program's own
    /// `seed` field is derived so that content randomness and structural
    /// randomness never alias.
    pub fn random(seed: u64) -> TraceProgram {
        let mut rng = StdRng::seed_from_u64(mix(seed, 0x09AC1E));
        let policy = OverlapPolicy::ALL[rng.gen_range(0..OverlapPolicy::ALL.len())];
        let prefix_len = rng.gen_range(8..500);
        let suffix_len = rng.gen_range(4..400);
        let n = rng.gen_range(0..=8);
        let mutations = (0..n).map(|_| random_mutation(&mut rng)).collect();
        TraceProgram {
            seed,
            policy,
            prefix_len,
            suffix_len,
            mutations,
        }
    }

    /// The attack flow endpoints (fixed: the oracle judges per-flow alerts).
    pub fn endpoints() -> ((Ipv4Addr, u16), (Ipv4Addr, u16)) {
        (
            ("10.66.0.1".parse().expect("static addr"), 31337),
            ("10.0.0.2".parse().expect("static addr"), 80),
        )
    }

    /// Compile to wire packets. Deterministic; total (never panics on any
    /// field values).
    pub fn compile(&self) -> CompiledTrace {
        let (client, server) = Self::endpoints();
        let victim = VictimConfig {
            policy: self.policy,
            ..Default::default()
        };

        // Payload: seeded filler around the planted signature.
        let prefix = filler(mix(self.seed, 0xF111), self.prefix_len.clamp(2, 4096));
        let suffix = filler(mix(self.seed, 0xF222), self.suffix_len.clamp(1, 4096));
        let mut payload = prefix;
        let sig_start = payload.len();
        payload.extend_from_slice(ORACLE_SIGNATURE);
        let sig_range = sig_start..payload.len();
        payload.extend_from_slice(&suffix);

        // Phase 1 — cut set: MSS grid plus every split mutation.
        let mut cuts: Vec<usize> = (0..payload.len()).step_by(MSS).collect();
        cuts.push(payload.len());
        for m in &self.mutations {
            match *m {
                Mutation::SplitAt { offset } => {
                    let at = 1 + offset % (payload.len() - 1);
                    cuts.push(at);
                }
                Mutation::SplitInSignature { delta } => {
                    let at = sig_range.start + 1 + delta % (ORACLE_SIGNATURE.len() - 1);
                    cuts.push(at);
                }
                _ => {}
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        let mut schedule: Vec<Emit> = cuts
            .windows(2)
            .map(|w| Emit::real(&payload, w[0], w[1] - w[0]))
            .collect();

        // Phase 2 — structural mutations, in program order.
        let mut decoys: Vec<(usize, usize, u64)> = Vec::new();
        let mut floods: Vec<(usize, u64)> = Vec::new();
        let mut noise: Vec<(usize, u64)> = Vec::new();
        for m in &self.mutations {
            let salt = mix(self.seed, m.salt());
            match *m {
                Mutation::SplitAt { .. } | Mutation::SplitInSignature { .. } => {}
                Mutation::Swap { a, b } => {
                    if schedule.len() >= 2 {
                        let (i, j) = (a % schedule.len(), b % schedule.len());
                        schedule.swap(i, j);
                    }
                }
                Mutation::Duplicate { index } => {
                    if !schedule.is_empty() {
                        let i = index % schedule.len();
                        let copy = schedule[i].clone();
                        schedule.insert(i + 1, copy);
                    }
                }
                Mutation::InconsistentRetransmit { index } => {
                    apply_inconsistent_retransmit(
                        &mut schedule,
                        index,
                        &payload,
                        self.policy,
                        salt,
                    );
                }
                Mutation::OverlapStitch { index, chunk } => {
                    apply_overlap_stitch(&mut schedule, index, chunk, &payload, salt);
                }
                Mutation::BadChecksumChaff { index } => {
                    if !schedule.is_empty() {
                        let i = index % schedule.len();
                        let twin = Emit {
                            offset: schedule[i].offset,
                            bytes: garbage(salt, schedule[i].bytes.len().max(1)),
                            pristine: false,
                            bad_checksum: true,
                            ttl: None,
                            frag: FragMode::None,
                        };
                        schedule.insert(i, twin);
                    }
                }
                Mutation::LowTtlChaff { index } => {
                    if !schedule.is_empty() {
                        let i = index % schedule.len();
                        let twin = Emit {
                            offset: schedule[i].offset,
                            bytes: garbage(salt, schedule[i].bytes.len().max(1)),
                            pristine: false,
                            bad_checksum: false,
                            // VictimConfig::default() drops TTL < 4 hops.
                            ttl: Some(2),
                            frag: FragMode::None,
                        };
                        schedule.insert(i, twin);
                    }
                }
                Mutation::Fragment { index, unit } => {
                    if !schedule.is_empty() {
                        let i = index % schedule.len();
                        schedule[i].frag = FragMode::Tiles(unit.clamp(8, 256));
                        schedule[i].pristine = false;
                    }
                }
                Mutation::OverlapFragment { index } => {
                    if !schedule.is_empty() {
                        let i = index % schedule.len();
                        schedule[i].frag = FragMode::Overlap;
                        schedule[i].pristine = false;
                    }
                }
                Mutation::Decoy { id, segments } => {
                    decoys.push((id, segments.clamp(1, 4), salt));
                }
                Mutation::CollisionFlood { flows } => {
                    floods.push((flows.clamp(1, 32), salt));
                }
                Mutation::HeavyTailNoise { flows } => {
                    noise.push((flows.clamp(4, 32), salt));
                }
            }
        }

        // Phase 3 — emit the attack flow.
        let mut b = PacketBuilder::new(client, server, self.policy);
        b.syn();
        for e in &schedule {
            b.emit(e, mix(self.seed, 0x0F0F));
        }
        b.fin(payload.len());
        let mut packets = b.packets;

        // Phase 4 — interleave decoy flows (and heavy-tail background
        // churn) at evenly spaced positions.
        for (id, segments, salt) in decoys {
            let decoy = decoy_packets(id, segments, salt);
            let stride = packets.len() / (decoy.len() + 1);
            for (k, pkt) in decoy.into_iter().enumerate() {
                let at = ((k + 1) * stride.max(1) + k).min(packets.len());
                packets.insert(at, pkt);
            }
        }
        for (flows, salt) in noise {
            let bg = heavytail_packets(flows, salt);
            let stride = packets.len() / (bg.len() + 1);
            for (k, pkt) in bg.into_iter().enumerate() {
                let at = ((k + 1) * stride.max(1) + k).min(packets.len());
                packets.insert(at, pkt);
            }
        }

        // Phase 5 — collision floods run *before* the attack connection:
        // they pre-fill the attack flow's probe window so the attack SYN
        // inserts into a full window (CLOCK eviction on arrival). Keeping
        // them ahead of the connection makes the campaign's detection
        // judgment independent of mid-stream table eviction; the
        // sticky-divert regression test drives mid-stream floods directly.
        if !floods.is_empty() {
            let mut front: Vec<Vec<u8>> = Vec::new();
            for (flows, salt) in floods {
                front.extend(collision_flood_packets(flows, salt));
            }
            front.extend(packets);
            packets = front;
        }

        CompiledTrace {
            packets,
            payload,
            sig_range,
            server,
            client,
            victim,
        }
    }
}

/// Brute-force `flows` distinct client endpoints whose canonical flow keys
/// hash (under [`ORACLE_FLOW_HASH_SEED`]) into the attack flow's probe
/// window, and emit each as a short victim-invisible connection (SYN, one
/// filler segment, FIN). Deterministic and total: the candidate scan is
/// bounded, so a pathological request degrades to fewer flood flows
/// instead of looping.
pub fn collision_flood_packets(flows: usize, salt: u64) -> Vec<Vec<u8>> {
    let flows = flows.clamp(1, 32);
    let (client, server) = TraceProgram::endpoints();
    let (attack_key, _) = sd_flow::FlowKey::from_endpoints(6, client, server);
    let target = sd_flow::hash::hash_key_seeded(ORACLE_FLOW_HASH_SEED, &attack_key) & FLOOD_MASK;
    // Flood flows talk to their own server, outside the victim model's
    // filter and every other generator's address space.
    let flood_server = std::net::SocketAddrV4::new(Ipv4Addr::new(10, 0, 8, 1), 80);

    let mut packets = Vec::with_capacity(flows * 3);
    let mut found = 0usize;
    // ~2^16 candidates expected per hit; the cap leaves a ~30× margin.
    let mut candidate = 0u64;
    let cap = flows as u64 * 2_000_000;
    while found < flows && candidate < cap {
        let c = candidate;
        candidate += 1;
        let port = 1024 + (c % 60_000) as u16;
        let ip = Ipv4Addr::from(0xAC18_0000u32.wrapping_add((c / 60_000) as u32));
        let flood_client = std::net::SocketAddrV4::new(ip, port);
        let (key, _) = sd_flow::FlowKey::from_endpoints(
            6,
            (*flood_client.ip(), flood_client.port()),
            (*flood_server.ip(), flood_server.port()),
        );
        if sd_flow::hash::hash_key_seeded(ORACLE_FLOW_HASH_SEED, &key) & FLOOD_MASK != target {
            continue;
        }
        found += 1;
        let isn = 0xC011_0000u32.wrapping_add(found as u32);
        let body = filler(mix(salt, c), 120);
        let mut ident = port ^ (isn as u16);
        let tcp = |seq: u32, flags: TcpFlags, payload: &[u8], ident: u16| {
            let frame = TcpPacketSpec::between(flood_client, flood_server)
                .seq(seq)
                .flags(flags)
                .ttl(64)
                .ident(ident)
                .payload(payload)
                .build();
            ip_of_frame(&frame).to_vec()
        };
        packets.push(tcp(isn, TcpFlags::SYN, b"", ident));
        ident = ident.wrapping_add(1);
        packets.push(tcp(
            isn.wrapping_add(1),
            TcpFlags::ACK.union(TcpFlags::PSH),
            &body,
            ident,
        ));
        ident = ident.wrapping_add(1);
        packets.push(tcp(
            isn.wrapping_add(1).wrapping_add(body.len() as u32),
            TcpFlags::FIN.union(TcpFlags::ACK),
            b"",
            ident,
        ));
    }
    packets
}

/// Seeded heavy-tail background packets: Zipf flow sizes with churn, kept
/// small enough (4 KiB flow cap) that interleaving stays cheap. Servers
/// live in `192.168.1.0/24` — victim-invisible — and payloads are the
/// generator's lowercase filler, which cannot contain the signature.
fn heavytail_packets(flows: usize, salt: u64) -> Vec<Vec<u8>> {
    let flows = flows.clamp(4, 32);
    let mut gen = sd_traffic::HeavyTailGenerator::new(sd_traffic::HeavyTailConfig {
        seed: salt,
        concurrency: (flows / 4).max(1),
        total_flows: flows,
        min_flow_bytes: 64,
        max_flow_bytes: 4096,
        churn: 0.2,
        ..Default::default()
    });
    gen.generate().packets.into_iter().map(|p| p.data).collect()
}

fn random_mutation(rng: &mut StdRng) -> Mutation {
    match rng.gen_range(0..13u32) {
        0 => Mutation::SplitAt { offset: rng.gen() },
        1 => Mutation::SplitInSignature { delta: rng.gen() },
        2 => Mutation::Swap {
            a: rng.gen(),
            b: rng.gen(),
        },
        3 => Mutation::Duplicate { index: rng.gen() },
        4 => Mutation::InconsistentRetransmit { index: rng.gen() },
        5 => Mutation::OverlapStitch {
            index: rng.gen(),
            chunk: rng.gen_range(3..=5),
        },
        6 => Mutation::BadChecksumChaff { index: rng.gen() },
        7 => Mutation::LowTtlChaff { index: rng.gen() },
        8 => Mutation::Fragment {
            index: rng.gen(),
            unit: rng.gen_range(8..64),
        },
        9 => Mutation::OverlapFragment { index: rng.gen() },
        10 => Mutation::Decoy {
            id: rng.gen_range(0..1000),
            segments: rng.gen_range(1..=4),
        },
        11 => Mutation::CollisionFlood {
            flows: rng.gen_range(8..=24),
        },
        _ => Mutation::HeavyTailNoise {
            flows: rng.gen_range(8..=32),
        },
    }
}

/// Replace entry `index` with a conflicting-retransmission triplet: both
/// copies cover `offset + 1 ..`, arrive while the byte at `offset` is still
/// a hole (so they meet in the reassembly buffer), and are ordered so the
/// victim's policy keeps the real copy; the one-byte plug comes last.
fn apply_inconsistent_retransmit(
    schedule: &mut Vec<Emit>,
    index: usize,
    payload: &[u8],
    policy: OverlapPolicy,
    salt: u64,
) {
    if schedule.is_empty() {
        return;
    }
    let i = index % schedule.len();
    let e = &schedule[i];
    if !e.pristine || e.bytes.len() < 2 {
        return;
    }
    let (o, l) = (e.offset, e.bytes.len());
    let contested_real = Emit::real(payload, o + 1, l - 1);
    let contested_garb = Emit {
        offset: o + 1,
        bytes: garbage(salt, l - 1),
        pristine: false,
        bad_checksum: false,
        ttl: None,
        frag: FragMode::None,
    };
    let plug = Emit::real(payload, o, 1);
    // Both copies start at the same offset: every overlap is a tie, so
    // First/BSD victims keep the first arrival, Last/Linux the second.
    let real_first = matches!(policy, OverlapPolicy::First | OverlapPolicy::Bsd);
    let (first, second) = if real_first {
        (contested_real, contested_garb)
    } else {
        (contested_garb, contested_real)
    };
    schedule.splice(i..=i, [first, second, plug]);
}

/// Replace entry `index` with the overlap-stitch train: each sub-segment
/// is `garbage(pad) ++ real(chunk)` and starts `pad` bytes *before* its
/// real chunk. When the flow is otherwise in order, the garbage head lands
/// entirely on territory the victim has already **delivered** — and
/// delivered bytes are frozen in every real stack, so the garbage is
/// discarded under *all four* overlap policies while the real chunk
/// extends the stream.
///
/// No stitched packet carries more than `chunk ≤ 5` consecutive real bytes
/// (no whole piece), every stitched sub-segment is `chunk + STITCH_PAD ≥
/// 15` bytes (never small), and every sub-segment's sequence number
/// regresses behind the delivered edge — the attack is visible *only* to
/// the out-of-order rule.
fn apply_overlap_stitch(
    schedule: &mut Vec<Emit>,
    index: usize,
    chunk: usize,
    payload: &[u8],
    salt: u64,
) {
    if schedule.is_empty() {
        return;
    }
    let i = index % schedule.len();
    let e = &schedule[i];
    let chunk = chunk.clamp(3, 5);
    if !e.pristine || e.bytes.len() < 2 * chunk {
        return;
    }
    let (o, l) = (e.offset, e.bytes.len());
    // Stream positions below STITCH_PAD cannot be given a full garbage
    // head; a shorter head would leave sub-segments under the small-segment
    // cutoff and the train would trip the small budget instead of staying
    // visible only to the out-of-order rule. Ship that lead-in as one plain
    // segment (at most one small segment — within the budget of T = 1).
    let pre = STITCH_PAD.saturating_sub(o).min(l);
    if l <= pre {
        return;
    }
    let mut train = Vec::new();
    if pre > 0 {
        train.push(Emit::real(payload, o, pre));
    }
    let mut j = pre;
    while j < l {
        let take = chunk.min(l - j);
        let mut bytes = garbage(mix(salt, j as u64), STITCH_PAD);
        bytes.extend_from_slice(&payload[o + j..o + j + take]);
        train.push(Emit {
            offset: o + j - STITCH_PAD,
            bytes,
            pristine: false,
            bad_checksum: false,
            ttl: None,
            frag: FragMode::None,
        });
        j += take;
    }
    schedule.splice(i..=i, train);
}

/// Packet assembly for the attack flow, mirroring the evasion builder:
/// distinct IP idents per packet, seq = isn + 1 + stream offset.
struct PacketBuilder {
    client: (Ipv4Addr, u16),
    server: (Ipv4Addr, u16),
    policy: OverlapPolicy,
    isn: u32,
    ttl: u8,
    next_ident: u16,
    packets: Vec<Vec<u8>>,
}

impl PacketBuilder {
    fn new(client: (Ipv4Addr, u16), server: (Ipv4Addr, u16), policy: OverlapPolicy) -> Self {
        let isn = 0x1000_0000;
        PacketBuilder {
            client,
            server,
            policy,
            isn,
            ttl: 64,
            next_ident: client.1 ^ (isn as u16),
            packets: Vec::new(),
        }
    }

    fn tcp(&mut self, seq: u32, flags: TcpFlags, payload: &[u8], ttl: u8, frag: bool) -> Vec<u8> {
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1);
        let frame = TcpPacketSpec::between(
            std::net::SocketAddrV4::new(self.client.0, self.client.1),
            std::net::SocketAddrV4::new(self.server.0, self.server.1),
        )
        .seq(seq)
        .flags(flags)
        .ttl(ttl)
        .ident(ident)
        .dont_frag(!frag)
        .payload(payload)
        .build();
        ip_of_frame(&frame).to_vec()
    }

    fn syn(&mut self) {
        let p = self.tcp(self.isn, TcpFlags::SYN, b"", self.ttl, false);
        self.packets.push(p);
    }

    fn fin(&mut self, payload_len: usize) {
        let seq = self.isn.wrapping_add(1).wrapping_add(payload_len as u32);
        let p = self.tcp(
            seq,
            TcpFlags::FIN.union(TcpFlags::ACK),
            b"",
            self.ttl,
            false,
        );
        self.packets.push(p);
    }

    fn emit(&mut self, e: &Emit, forge_salt: u64) {
        let seq = self.isn.wrapping_add(1).wrapping_add(e.offset as u32);
        let ttl = e.ttl.unwrap_or(self.ttl);
        let frag = e.frag != FragMode::None;
        let mut pkt = self.tcp(seq, TcpFlags::ACK.union(TcpFlags::PSH), &e.bytes, ttl, frag);
        if e.bad_checksum {
            let ihl = Ipv4Packet::new_unchecked(&pkt[..]).header_len();
            pkt[ihl + 16] ^= 0xff;
        }
        match e.frag {
            FragMode::None => self.packets.push(pkt),
            FragMode::Tiles(unit) => match fragment_ipv4(&pkt, unit) {
                Ok(frags) => self.packets.extend(frags),
                Err(_) => self.packets.push(pkt),
            },
            FragMode::Overlap => {
                // Roughly trisect the datagram; fall back to the whole
                // packet when it cannot produce at least three fragments.
                let ip_payload = 20 + e.bytes.len();
                let unit = (ip_payload.div_ceil(3)).max(8);
                let frags = match fragment_ipv4(&pkt, unit) {
                    Ok(f) if f.len() >= 3 => f,
                    _ => {
                        self.packets.push(pkt);
                        return;
                    }
                };
                // Forge a conflicting copy of a *middle* fragment; the
                // copies tie on offset, so First/BSD victims keep the first
                // arrival, Last/Linux the second. The target must carry
                // MF=1: a forged copy of the final fragment would complete
                // the datagram early with garbage content and the real
                // bytes could then never be delivered.
                let target = frags.len() - 2;
                let mut forged = frags[target].clone();
                {
                    let mut v = Ipv4Packet::new_unchecked(&mut forged[..]);
                    let g = garbage(mix(forge_salt, seq as u64), v.payload().len());
                    v.payload_mut().copy_from_slice(&g);
                    v.fill_checksum();
                }
                let real_first = matches!(self.policy, OverlapPolicy::First | OverlapPolicy::Bsd);
                for (i, f) in frags.iter().enumerate() {
                    if i == target {
                        if real_first {
                            self.packets.push(f.clone());
                            self.packets.push(forged.clone());
                        } else {
                            self.packets.push(forged.clone());
                            self.packets.push(f.clone());
                        }
                    } else {
                        self.packets.push(f.clone());
                    }
                }
            }
        }
    }
}

/// A decoy conversation: SYN, `segments` filler segments, FIN — to a
/// *different* server, so the victim model (which tracks the attacked
/// service) never sees it, and carrying filler that cannot contain the
/// signature, so any alert on it is a false alert.
fn decoy_packets(id: usize, segments: usize, salt: u64) -> Vec<Vec<u8>> {
    let client: Ipv4Addr = format!("10.77.{}.{}", (id / 250) % 250, 1 + id % 250)
        .parse()
        .expect("static addr");
    let server: Ipv4Addr = format!("10.0.9.{}", 1 + id % 250)
        .parse()
        .expect("static addr");
    let cport = 20_000 + (id % 10_000) as u16;
    let isn = 0x5EED_0000u32.wrapping_add(id as u32);
    let mut rng = StdRng::seed_from_u64(salt);
    let mut packets = Vec::new();
    let mut ident = cport ^ (isn as u16);
    let tcp = |seq: u32, flags: TcpFlags, payload: &[u8], ident: u16| {
        let frame = TcpPacketSpec::between(
            std::net::SocketAddrV4::new(client, cport),
            std::net::SocketAddrV4::new(server, 80),
        )
        .seq(seq)
        .flags(flags)
        .ttl(64)
        .ident(ident)
        .payload(payload)
        .build();
        ip_of_frame(&frame).to_vec()
    };
    packets.push(tcp(isn, TcpFlags::SYN, b"", ident));
    let mut off = 0usize;
    for _ in 0..segments {
        let len = rng.gen_range(40..600);
        let body = filler(mix(salt, off as u64), len);
        ident = ident.wrapping_add(1);
        packets.push(tcp(
            isn.wrapping_add(1).wrapping_add(off as u32),
            TcpFlags::ACK.union(TcpFlags::PSH),
            &body,
            ident,
        ));
        off += len;
    }
    ident = ident.wrapping_add(1);
    packets.push(tcp(
        isn.wrapping_add(1).wrapping_add(off as u32),
        TcpFlags::FIN.union(TcpFlags::ACK),
        b"",
        ident,
    ));
    packets
}

// ---------------------------------------------------------------------------
// The `.trace` text format.
// ---------------------------------------------------------------------------

impl TraceProgram {
    /// Render as the line-based `.trace` artifact format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("# split-detect fuzz trace\n");
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("policy {}\n", self.policy));
        s.push_str(&format!("prefix {}\n", self.prefix_len));
        s.push_str(&format!("suffix {}\n", self.suffix_len));
        for m in &self.mutations {
            let args = match *m {
                Mutation::SplitAt { offset } => format!("{offset}"),
                Mutation::SplitInSignature { delta } => format!("{delta}"),
                Mutation::Swap { a, b } => format!("{a} {b}"),
                Mutation::Duplicate { index } => format!("{index}"),
                Mutation::InconsistentRetransmit { index } => format!("{index}"),
                Mutation::OverlapStitch { index, chunk } => format!("{index} {chunk}"),
                Mutation::BadChecksumChaff { index } => format!("{index}"),
                Mutation::LowTtlChaff { index } => format!("{index}"),
                Mutation::Fragment { index, unit } => format!("{index} {unit}"),
                Mutation::OverlapFragment { index } => format!("{index}"),
                Mutation::Decoy { id, segments } => format!("{id} {segments}"),
                Mutation::CollisionFlood { flows } => format!("{flows}"),
                Mutation::HeavyTailNoise { flows } => format!("{flows}"),
            };
            s.push_str(&format!("mutate {} {}\n", m.name(), args));
        }
        s
    }

    /// Parse the `.trace` format back. Inverse of [`to_text`](Self::to_text).
    pub fn from_text(text: &str) -> Result<TraceProgram, String> {
        let mut seed = None;
        let mut policy = None;
        let mut prefix_len = None;
        let mut suffix_len = None;
        let mut mutations = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            fn take<'t>(
                tokens: &[&'t str],
                cursor: &mut usize,
                lineno: usize,
                name: &str,
            ) -> Result<&'t str, String> {
                let t = tokens
                    .get(*cursor)
                    .ok_or_else(|| format!("line {}: {name} needs a value", lineno + 1))?;
                *cursor += 1;
                Ok(t)
            }
            fn take_num(
                tokens: &[&str],
                cursor: &mut usize,
                lineno: usize,
                name: &str,
            ) -> Result<usize, String> {
                take(tokens, cursor, lineno, name)?
                    .parse::<usize>()
                    .map_err(|_| format!("line {}: bad {name} value", lineno + 1))
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let key = tokens[0];
            let mut at = 1usize;
            match key {
                "seed" => seed = Some(take_num(&tokens, &mut at, lineno, "seed")? as u64),
                "prefix" => prefix_len = Some(take_num(&tokens, &mut at, lineno, "prefix")?),
                "suffix" => suffix_len = Some(take_num(&tokens, &mut at, lineno, "suffix")?),
                "policy" => {
                    let p = take(&tokens, &mut at, lineno, "policy")?;
                    policy = Some(match p {
                        "first" => OverlapPolicy::First,
                        "last" => OverlapPolicy::Last,
                        "bsd" => OverlapPolicy::Bsd,
                        "linux" => OverlapPolicy::Linux,
                        other => {
                            return Err(format!("line {}: unknown policy {other:?}", lineno + 1))
                        }
                    });
                }
                "mutate" => {
                    let kind = take(&tokens, &mut at, lineno, "mutation kind")?;
                    let num = |name: &str, at: &mut usize| take_num(&tokens, at, lineno, name);
                    let m = match kind {
                        "split" => Mutation::SplitAt {
                            offset: num("offset", &mut at)?,
                        },
                        "split-sig" => Mutation::SplitInSignature {
                            delta: num("delta", &mut at)?,
                        },
                        "swap" => Mutation::Swap {
                            a: num("a", &mut at)?,
                            b: num("b", &mut at)?,
                        },
                        "dup" => Mutation::Duplicate {
                            index: num("index", &mut at)?,
                        },
                        "retransmit-bad" => Mutation::InconsistentRetransmit {
                            index: num("index", &mut at)?,
                        },
                        "stitch" => Mutation::OverlapStitch {
                            index: num("index", &mut at)?,
                            chunk: num("chunk", &mut at)?,
                        },
                        "chaff-cksum" => Mutation::BadChecksumChaff {
                            index: num("index", &mut at)?,
                        },
                        "chaff-ttl" => Mutation::LowTtlChaff {
                            index: num("index", &mut at)?,
                        },
                        "frag" => Mutation::Fragment {
                            index: num("index", &mut at)?,
                            unit: num("unit", &mut at)?,
                        },
                        "frag-overlap" => Mutation::OverlapFragment {
                            index: num("index", &mut at)?,
                        },
                        "decoy" => Mutation::Decoy {
                            id: num("id", &mut at)?,
                            segments: num("segments", &mut at)?,
                        },
                        "collide-flood" => Mutation::CollisionFlood {
                            flows: num("flows", &mut at)?,
                        },
                        "heavytail" => Mutation::HeavyTailNoise {
                            flows: num("flows", &mut at)?,
                        },
                        other => {
                            return Err(format!("line {}: unknown mutation {other:?}", lineno + 1))
                        }
                    };
                    mutations.push(m);
                }
                other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
            }
            if at != tokens.len() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
        }
        Ok(TraceProgram {
            seed: seed.ok_or("missing seed")?,
            policy: policy.ok_or("missing policy")?,
            prefix_len: prefix_len.ok_or("missing prefix")?,
            suffix_len: suffix_len.ok_or("missing suffix")?,
            mutations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_traffic::victim::receive_stream;

    fn delivered(p: &TraceProgram) -> bool {
        let c = p.compile();
        let stream = receive_stream(c.packets.iter(), c.victim, c.server);
        stream
            .windows(ORACLE_SIGNATURE.len())
            .any(|w| w == ORACLE_SIGNATURE)
    }

    #[test]
    fn bare_program_delivers() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 1,
                policy,
                prefix_len: 100,
                suffix_len: 50,
                mutations: vec![],
            };
            assert!(delivered(&p), "bare program must deliver under {policy}");
        }
    }

    #[test]
    fn stitch_delivers_and_hides_pieces_under_every_policy() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 2,
                policy,
                prefix_len: 60,
                suffix_len: 40,
                mutations: vec![Mutation::OverlapStitch { index: 0, chunk: 4 }],
            };
            assert!(delivered(&p), "stitch must deliver under {policy}");
            // No packet may carry 6 consecutive signature bytes (the
            // shortest piece under the default split is 6 bytes).
            let c = p.compile();
            for pkt in &c.packets {
                for piece in ORACLE_SIGNATURE.windows(6) {
                    assert!(
                        !pkt.windows(6).any(|w| w == piece),
                        "a stitched packet leaks a signature window ({policy})"
                    );
                }
            }
        }
    }

    #[test]
    fn inconsistent_retransmit_delivers_under_every_policy() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 3,
                policy,
                prefix_len: 80,
                suffix_len: 30,
                mutations: vec![Mutation::InconsistentRetransmit { index: 0 }],
            };
            assert!(delivered(&p), "retransmit-bad must deliver under {policy}");
        }
    }

    #[test]
    fn chaff_and_fragments_deliver() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 4,
                policy,
                prefix_len: 120,
                suffix_len: 80,
                mutations: vec![
                    Mutation::SplitInSignature { delta: 9 },
                    Mutation::BadChecksumChaff { index: 0 },
                    Mutation::LowTtlChaff { index: 1 },
                    Mutation::Fragment { index: 1, unit: 13 },
                    Mutation::OverlapFragment { index: 2 },
                    Mutation::Decoy { id: 7, segments: 2 },
                ],
            };
            assert!(delivered(&p), "chaff program must deliver under {policy}");
        }
    }

    #[test]
    fn compile_is_total_on_junk_parameters() {
        // Any parameter values must compile without panicking.
        let p = TraceProgram {
            seed: 5,
            policy: OverlapPolicy::Linux,
            prefix_len: 0,
            suffix_len: 0,
            mutations: vec![
                Mutation::SplitAt { offset: usize::MAX },
                Mutation::Swap {
                    a: usize::MAX,
                    b: 0,
                },
                Mutation::OverlapStitch {
                    index: usize::MAX,
                    chunk: usize::MAX,
                },
                Mutation::Fragment {
                    index: 3,
                    unit: usize::MAX,
                },
                Mutation::InconsistentRetransmit { index: usize::MAX },
            ],
        };
        let c = p.compile();
        assert!(!c.packets.is_empty());
    }

    #[test]
    fn text_roundtrip() {
        for seed in 0..50u64 {
            let p = TraceProgram::random(seed);
            let text = p.to_text();
            let back = TraceProgram::from_text(&text).expect("parse back");
            assert_eq!(p, back, "text roundtrip for seed {seed}\n{text}");
        }
    }

    #[test]
    fn from_text_rejects_junk() {
        assert!(TraceProgram::from_text("").is_err());
        assert!(TraceProgram::from_text("seed 1\npolicy weird\n").is_err());
        assert!(TraceProgram::from_text(
            "seed 1\npolicy first\nprefix 1\nsuffix 1\nmutate zap 3\n"
        )
        .is_err());
        assert!(TraceProgram::from_text(
            "seed 1\npolicy first\nprefix 1\nsuffix 1\nmutate swap 3\n"
        )
        .is_err());
    }

    #[test]
    fn random_programs_are_deterministic() {
        assert_eq!(TraceProgram::random(42), TraceProgram::random(42));
        assert_ne!(TraceProgram::random(42), TraceProgram::random(43));
    }

    #[test]
    fn collision_flood_keys_share_the_attack_window() {
        use sd_packet::parse::parse_ipv4;
        let packets = collision_flood_packets(12, 99);
        assert_eq!(packets.len(), 12 * 3, "SYN + data + FIN per flood flow");
        let (client, server) = TraceProgram::endpoints();
        let (attack_key, _) = sd_flow::FlowKey::from_endpoints(6, client, server);
        let target =
            sd_flow::hash::hash_key_seeded(ORACLE_FLOW_HASH_SEED, &attack_key) & FLOOD_MASK;
        let mut keys = std::collections::HashSet::new();
        for pkt in &packets {
            let parsed = parse_ipv4(pkt).expect("flood packet parses");
            let (key, _) = sd_flow::FlowKey::from_parsed(&parsed).expect("flood packet is tcp");
            assert_ne!(key, attack_key, "flood flows are distinct from the attack");
            assert_eq!(
                sd_flow::hash::hash_key_seeded(ORACLE_FLOW_HASH_SEED, &key) & FLOOD_MASK,
                target,
                "every flood key must collide with the attack window"
            );
            keys.insert(key);
        }
        assert_eq!(keys.len(), 12, "flood flows are pairwise distinct");
    }

    #[test]
    fn flood_and_heavytail_programs_deliver_and_stay_signature_free() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 21,
                policy,
                prefix_len: 100,
                suffix_len: 60,
                mutations: vec![
                    Mutation::SplitInSignature { delta: 5 },
                    Mutation::CollisionFlood { flows: 10 },
                    Mutation::HeavyTailNoise { flows: 12 },
                ],
            };
            assert!(delivered(&p), "flooded program must deliver under {policy}");
            // Background packets carry no signature bytes: the only packets
            // that may contain signature fragments come from the attack
            // client.
            let c = p.compile();
            for pkt in &c.packets {
                let src = &pkt[12..16];
                if src == [10, 66, 0, 1] {
                    continue;
                }
                assert!(
                    !pkt.windows(6)
                        .any(|w| ORACLE_SIGNATURE.windows(6).any(|s| s == w)),
                    "background packet leaks signature bytes"
                );
            }
        }
    }
}
