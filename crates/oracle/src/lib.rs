//! # sd-oracle — the differential fuzzing oracle
//!
//! The paper's core claim is a theorem: under admissible parameters,
//! Split-Detect catches every byte-string evasion a full-reassembly IPS
//! would catch. The hand-written gauntlet exercises 13 known strategies;
//! this crate machine-checks the theorem against *compositions* nobody
//! enumerated:
//!
//! * [`program`] — seeded adversarial trace programs: a mutation grammar
//!   (segment splits at random and signature-straddling offsets, IP
//!   fragmentation, reordering, duplication, overlapping retransmits with
//!   consistent and inconsistent bytes, TTL/checksum chaff, decoy flows)
//!   compiled into deterministic packet sequences, plus the replayable
//!   `.trace` text format;
//! * [`exec`] — the differential executor: victim-model ground truth,
//!   `SplitDetect`, `ShardedSplitDetect` (1/2/4 shards) and
//!   `ConventionalIps` run over each trace with the theorem invariants
//!   asserted (detection modulo documented divert accounting, sharded /
//!   unsharded verdict equality, no panics, no decoy alerts);
//! * [`mod@shrink`] — greedy delta debugging: failing programs are minimized
//!   to small reproducers and pinned as regression tests.
//!
//! The CLI front end is `sd fuzz`; CI runs a bounded smoke campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod program;
pub mod shrink;

pub use exec::{
    campaign_signatures, run_campaign, run_compiled, run_compiled_with, run_program,
    run_program_with, CampaignConfig, CampaignResult, CampaignStats, EngineTweaks, FailureCase,
    TraceOutcome, Violation, CAMPAIGN_CORPUS_RULES,
};
pub use program::{
    collision_flood_packets, CompiledTrace, Mutation, TraceProgram, ORACLE_FLOW_HASH_SEED,
    ORACLE_SIGNATURE,
};
pub use shrink::shrink;
