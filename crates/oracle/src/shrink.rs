//! Delta-debugging shrinker for failing trace programs.
//!
//! The vendored proptest stand-in replays seeds but does not shrink, so
//! the oracle carries its own minimizer: greedy delta debugging over the
//! mutation list plus padding reduction, re-checking the failure predicate
//! after every candidate edit. Deletion-stable mutation semantics (indices
//! resolved modulo the schedule, per-mutation garbage salts — see
//! [`crate::program`]) are what make this converge: dropping one mutation
//! does not scramble the meaning of the others.

use crate::program::TraceProgram;

/// Minimize `program` while `still_failing` holds. Runs to a fixpoint:
/// the result is 1-minimal in mutations (no single mutation can be
/// dropped) and padding is reduced as far as the failure allows.
pub fn shrink(
    program: &TraceProgram,
    mut still_failing: impl FnMut(&TraceProgram) -> bool,
) -> TraceProgram {
    let mut best = program.clone();
    debug_assert!(still_failing(&best), "shrink needs a failing input");

    loop {
        let mut progressed = false;

        // Drop mutations, one at a time (restarting after each success so
        // index resolution is always judged against the current list).
        let mut i = 0;
        while i < best.mutations.len() {
            let mut candidate = best.clone();
            candidate.mutations.remove(i);
            if still_failing(&candidate) {
                best = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Merge exact duplicates (a dup of a dup adds nothing).
        let mut deduped = best.clone();
        deduped.mutations.dedup();
        if deduped.mutations.len() < best.mutations.len() && still_failing(&deduped) {
            best = deduped;
            progressed = true;
        }

        // Halve the padding while the failure survives.
        for field in [0, 1] {
            loop {
                let mut candidate = best.clone();
                let v = if field == 0 {
                    &mut candidate.prefix_len
                } else {
                    &mut candidate.suffix_len
                };
                if *v <= 2 {
                    break;
                }
                *v /= 2;
                if still_failing(&candidate) {
                    best = candidate;
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Mutation;
    use sd_reassembly::OverlapPolicy;

    /// A synthetic predicate: "failing" iff a stitch mutation survives.
    /// Exercises the shrinking loop without engine runs.
    #[test]
    fn shrink_drops_everything_but_the_culprit() {
        let program = TraceProgram {
            seed: 9,
            policy: OverlapPolicy::Bsd,
            prefix_len: 400,
            suffix_len: 300,
            mutations: vec![
                Mutation::SplitAt { offset: 7 },
                Mutation::Decoy { id: 3, segments: 2 },
                Mutation::OverlapStitch { index: 0, chunk: 4 },
                Mutation::Duplicate { index: 1 },
                Mutation::Duplicate { index: 1 },
                Mutation::LowTtlChaff { index: 0 },
            ],
        };
        let shrunk = shrink(&program, |p| {
            p.mutations
                .iter()
                .any(|m| matches!(m, Mutation::OverlapStitch { .. }))
        });
        assert_eq!(
            shrunk.mutations,
            vec![Mutation::OverlapStitch { index: 0, chunk: 4 }]
        );
        assert!(
            shrunk.prefix_len <= 3,
            "prefix not shrunk: {}",
            shrunk.prefix_len
        );
        assert!(
            shrunk.suffix_len <= 2,
            "suffix not shrunk: {}",
            shrunk.suffix_len
        );
    }

    #[test]
    fn shrink_keeps_interdependent_pairs() {
        // Failing iff both a split and a swap survive: 1-minimality keeps
        // both (neither can be dropped alone).
        let program = TraceProgram {
            seed: 10,
            policy: OverlapPolicy::First,
            prefix_len: 64,
            suffix_len: 64,
            mutations: vec![
                Mutation::SplitAt { offset: 1 },
                Mutation::Decoy { id: 1, segments: 1 },
                Mutation::Swap { a: 0, b: 1 },
            ],
        };
        let shrunk = shrink(&program, |p| {
            let has_split = p
                .mutations
                .iter()
                .any(|m| matches!(m, Mutation::SplitAt { .. }));
            let has_swap = p
                .mutations
                .iter()
                .any(|m| matches!(m, Mutation::Swap { .. }));
            has_split && has_swap
        });
        assert_eq!(shrunk.mutations.len(), 2);
    }
}
