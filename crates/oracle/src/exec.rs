//! The differential executor: one program, five engines, three invariants.
//!
//! Ground truth comes from the victim model — *did the signature arrive
//! contiguously in the delivered stream?* — and the theorem is judged
//! against it:
//!
//! 1. **Detection** — delivered ⇒ Split-Detect alerts on the attack flow,
//!    *modulo the documented slow-path divert accounting*: a run that
//!    overflows the bounded delay line or evicts from the diverted set has
//!    explicitly traded the guarantee for bounded state
//!    (`DivertStats::delay_line_misses` / `set_evictions` — the engine
//!    itself reports the erosion), and is counted as excused, not failed.
//! 2. **Shard equivalence** — `ShardedSplitDetect` with 1, 2 and 4 shards
//!    produces the same alert multiset as the single engine.
//! 3. **No panics** — every engine survives every trace (worker panics
//!    contained by the shard supervisor count as failures here too), and
//!    no engine alerts on a signature-free decoy flow.
//!
//! `ConventionalIps` runs alongside for campaign statistics (the paper's
//! cost-not-coverage comparison), but is not an invariant: its verdict is
//! reported, not asserted.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sd_flow::FlowKey;
use sd_ips::api::run_trace;
use sd_ips::conventional::ConventionalConfig;
use sd_ips::rules::parse_rules;
use sd_ips::{Alert, ConventionalIps, Signature, SignatureSet};
use sd_reassembly::OverlapPolicy;
use sd_traffic::victim::receive_stream;
use sd_traffic::{generate_rule_corpus, RuleCorpusConfig};
use splitdetect::{ShardedSplitDetect, SplitDetect, SplitDetectConfig, SplitDetectStats};

use crate::program::{CompiledTrace, TraceProgram, ORACLE_SIGNATURE};

/// Shard counts the equivalence invariant covers.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Deliberate engine sabotage, used to prove the oracle *can* fail: the
/// acceptance test disables one anomaly rule and the fuzzer must find and
/// shrink a miss. Routed through `SplitDetectConfig`, so the sabotaged
/// engine is exactly the shipping engine minus one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTweaks {
    /// Disable the sequence-monotonicity divert rule.
    pub disable_out_of_order: bool,
    /// Disable the fragment divert rule.
    pub disable_fragments: bool,
}

impl EngineTweaks {
    /// The untweaked engine.
    pub const NONE: EngineTweaks = EngineTweaks {
        disable_out_of_order: false,
        disable_fragments: false,
    };

    /// True if any rule is disabled.
    pub fn sabotaged(&self) -> bool {
        *self != EngineTweaks::NONE
    }

    fn config(&self, policy: OverlapPolicy) -> SplitDetectConfig {
        SplitDetectConfig {
            slow_path_policy: policy,
            divert_on_out_of_order: !self.disable_out_of_order,
            divert_on_fragments: !self.disable_fragments,
            // Pinned so campaigns are bit-deterministic and so the
            // collision-flood primitive's brute-forced keys actually
            // collide in the engine under test.
            flow_hash_seed: Some(crate::program::ORACLE_FLOW_HASH_SEED),
            ..Default::default()
        }
    }
}

/// One broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The victim received the signature but Split-Detect stayed silent
    /// (and the run was not excused by divert accounting).
    MissedDelivery {
        /// The victim policy the attack was crafted against.
        policy: OverlapPolicy,
    },
    /// A sharded engine's alert multiset differs from the single engine's.
    ShardDivergence {
        /// Shard count of the diverging engine.
        shards: usize,
        /// Alert count from the single engine.
        single_alerts: usize,
        /// Alert count from the sharded engine.
        sharded_alerts: usize,
    },
    /// An engine (or a shard worker) panicked.
    EnginePanic {
        /// Which engine died.
        engine: String,
        /// Panic payload, when it was a string.
        detail: String,
    },
    /// An engine alerted on a signature-free decoy flow.
    FalseAlert {
        /// Which engine raised it.
        engine: String,
        /// The innocent flow.
        flow: FlowKey,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissedDelivery { policy } => {
                write!(f, "signature delivered to {policy} victim but not detected")
            }
            Violation::ShardDivergence {
                shards,
                single_alerts,
                sharded_alerts,
            } => write!(
                f,
                "{shards}-shard engine diverged: {sharded_alerts} alert(s) vs {single_alerts} single"
            ),
            Violation::EnginePanic { engine, detail } => {
                write!(f, "{engine} panicked: {detail}")
            }
            Violation::FalseAlert { engine, flow } => {
                write!(f, "{engine} alerted on decoy flow {flow}")
            }
        }
    }
}

/// Everything the oracle learned from one trace.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// The victim received the signature contiguously.
    pub delivered: bool,
    /// Split-Detect (single engine) alerted on the attack flow.
    pub split_alerted: bool,
    /// The conventional reassembling IPS alerted (statistics only).
    pub conventional_alerted: bool,
    /// The detection invariant was excused by divert accounting
    /// (delay-line misses or diverted-set evictions).
    pub excused: bool,
    /// Broken invariants (empty = the trace passed).
    pub violations: Vec<Violation>,
    /// Packets in the compiled trace.
    pub packets: usize,
}

impl TraceOutcome {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn oracle_signatures() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("oracle-evil", ORACLE_SIGNATURE)])
}

/// Rules in a `--rules-seed` campaign corpus. Small on purpose: every
/// iteration rebuilds seven engines from scratch, so the corpus prices in
/// realistic automaton *structure* (shared prefixes, mixed alphabets)
/// without making each iteration a compile benchmark.
pub const CAMPAIGN_CORPUS_RULES: usize = 64;

/// The signature set a campaign runs: the planted oracle signature, plus —
/// when `rules_seed` is given — a generated rule corpus as ballast. The
/// ballast signatures never occur in generated traces (filler is lowercase,
/// corpus contents are ≥ 12 structured bytes), so ground truth and every
/// invariant are unchanged; what changes is the automaton the fast path
/// actually scans with.
pub fn campaign_signatures(rules_seed: Option<u64>) -> SignatureSet {
    let mut sigs = vec![Signature::new("oracle-evil", ORACLE_SIGNATURE)];
    if let Some(seed) = rules_seed {
        let text = generate_rule_corpus(&RuleCorpusConfig::sized(CAMPAIGN_CORPUS_RULES, seed));
        let set = parse_rules(&text).expect("generated corpus parses cleanly");
        for (i, rule) in set.rules.iter().enumerate() {
            sigs.push(Signature::new(
                format!("corpus-{i}"),
                rule.signature_bytes().to_vec(),
            ));
        }
    }
    SignatureSet::from_signatures(sigs)
}

/// Sort key making alert lists comparable across engines: flow identity,
/// signature, stream offset and source stage.
fn alert_key(a: &Alert) -> (FlowKey, usize, u64, u8) {
    (a.flow, a.signature, a.offset, a.source as u8)
}

fn sorted_keys(alerts: &[Alert]) -> Vec<(FlowKey, usize, u64, u8)> {
    let mut keys: Vec<_> = alerts.iter().map(alert_key).collect();
    keys.sort_unstable();
    keys
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Excused when the engine's own accounting says the guarantee was eroded
/// by bounded state: delay-line overflow or diverted-set eviction.
fn accounting_excuse(stats: &SplitDetectStats) -> bool {
    stats.divert.delay_line_misses > 0 || stats.divert.set_evictions > 0
}

/// Run one compiled trace through every engine and judge the invariants.
pub fn run_compiled(compiled: &CompiledTrace, tweaks: EngineTweaks) -> TraceOutcome {
    run_compiled_with(compiled, tweaks, &oracle_signatures())
}

/// [`run_compiled`] with an explicit signature set (see
/// [`campaign_signatures`]): the set must contain the oracle signature,
/// and any extra signatures must not occur in generated traces.
pub fn run_compiled_with(
    compiled: &CompiledTrace,
    tweaks: EngineTweaks,
    sigs: &SignatureSet,
) -> TraceOutcome {
    let mut violations = Vec::new();

    // Ground truth: what does the victim's stack deliver?
    let stream = receive_stream(compiled.packets.iter(), compiled.victim, compiled.server);
    let delivered = stream
        .windows(ORACLE_SIGNATURE.len())
        .any(|w| w == ORACLE_SIGNATURE);
    let (attack_flow, _) = FlowKey::from_endpoints(6, compiled.client, compiled.server);

    let config = tweaks.config(compiled.victim.policy);

    // Single engine (also the excuse source for the detection invariant).
    let single = catch_unwind(AssertUnwindSafe(|| {
        let mut engine =
            SplitDetect::with_config(sigs.clone(), config).expect("oracle config is admissible");
        let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
        (alerts, engine.stats())
    }));
    let (single_alerts, single_stats) = match single {
        Ok(pair) => pair,
        Err(payload) => {
            violations.push(Violation::EnginePanic {
                engine: "split-detect".into(),
                detail: panic_detail(payload),
            });
            return TraceOutcome {
                delivered,
                split_alerted: false,
                conventional_alerted: false,
                excused: false,
                violations,
                packets: compiled.packets.len(),
            };
        }
    };
    let split_alerted = single_alerts.iter().any(|a| a.flow == attack_flow);
    let excused = accounting_excuse(&single_stats);

    for a in &single_alerts {
        if a.flow != attack_flow {
            violations.push(Violation::FalseAlert {
                engine: "split-detect".into(),
                flow: a.flow,
            });
        }
    }

    if delivered && !split_alerted && !excused {
        violations.push(Violation::MissedDelivery {
            policy: compiled.victim.policy,
        });
    }

    // Shard equivalence against the single engine's verdicts.
    let single_keys = sorted_keys(&single_alerts);
    for shards in SHARD_COUNTS {
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut engine = ShardedSplitDetect::new(sigs.clone(), config, shards)
                .expect("oracle config is admissible");
            let alerts = run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()));
            let failures: Vec<String> = engine.failures().iter().map(|f| f.to_string()).collect();
            let stats = engine.stats();
            (alerts, failures, stats)
        }));
        let (alerts, failures, shard_stats) = match run {
            Ok(t) => t,
            Err(payload) => {
                violations.push(Violation::EnginePanic {
                    engine: format!("sharded({shards})"),
                    detail: panic_detail(payload),
                });
                continue;
            }
        };
        for failure in failures {
            violations.push(Violation::EnginePanic {
                engine: format!("sharded({shards})"),
                detail: failure,
            });
        }
        if sorted_keys(&alerts) != single_keys {
            // Shards split the delay-line budget, so a trace that already
            // eroded the accounting may legitimately differ; everything
            // else must be byte-identical.
            let shard_excuse = shard_stats.iter().any(accounting_excuse);
            if !(excused || shard_excuse) {
                violations.push(Violation::ShardDivergence {
                    shards,
                    single_alerts: single_alerts.len(),
                    sharded_alerts: alerts.len(),
                });
            }
        }
    }

    // Conventional IPS, policy-matched: campaign statistics only.
    let conventional_alerted = catch_unwind(AssertUnwindSafe(|| {
        let mut engine = ConventionalIps::with_config(
            sigs.clone(),
            ConventionalConfig {
                policy: compiled.victim.policy,
                ..Default::default()
            },
        );
        run_trace(&mut engine, compiled.packets.iter().map(|p| p.as_slice()))
            .iter()
            .any(|a| a.flow == attack_flow)
    }))
    .unwrap_or_else(|payload| {
        violations.push(Violation::EnginePanic {
            engine: "conventional".into(),
            detail: panic_detail(payload),
        });
        false
    });

    TraceOutcome {
        delivered,
        split_alerted,
        conventional_alerted,
        excused,
        violations,
        packets: compiled.packets.len(),
    }
}

/// Compile and judge one program.
pub fn run_program(program: &TraceProgram, tweaks: EngineTweaks) -> TraceOutcome {
    run_compiled(&program.compile(), tweaks)
}

/// [`run_program`] with an explicit signature set.
pub fn run_program_with(
    program: &TraceProgram,
    tweaks: EngineTweaks,
    sigs: &SignatureSet,
) -> TraceOutcome {
    run_compiled_with(&program.compile(), tweaks, sigs)
}

/// Campaign configuration for [`run_campaign`].
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Programs to draw and judge.
    pub iters: u64,
    /// Base seed; iteration `i` uses a seed derived from `(seed, i)`.
    pub seed: u64,
    /// Shrink failing programs before reporting them.
    pub minimize: bool,
    /// Engine sabotage (testing the oracle itself).
    pub tweaks: EngineTweaks,
    /// Stop after this many failures (0 = never stop early).
    pub max_failures: usize,
    /// Load engines with a generated rule corpus (seeded here) alongside
    /// the oracle signature; `None` runs the lone-signature classic.
    pub rules_seed: Option<u64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            iters: 256,
            seed: 1,
            minimize: false,
            tweaks: EngineTweaks::NONE,
            max_failures: 1,
            rules_seed: None,
        }
    }
}

/// Aggregate counters over a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Programs judged.
    pub iters: u64,
    /// Traces whose signature reached the victim.
    pub delivered: u64,
    /// Delivered traces Split-Detect alerted on.
    pub split_caught: u64,
    /// Delivered traces the conventional IPS alerted on.
    pub conventional_caught: u64,
    /// Traces excused by slow-path divert accounting.
    pub excused: u64,
    /// Total packets compiled.
    pub packets: u64,
    /// Traces with at least one violation.
    pub failing_traces: u64,
}

/// One failing trace, as reported by a campaign.
#[derive(Debug, Clone)]
pub struct FailureCase {
    /// The program as originally drawn.
    pub program: TraceProgram,
    /// The shrunk reproducer (when minimization ran).
    pub shrunk: Option<TraceProgram>,
    /// Rendered violations from the (shrunk, if available) program.
    pub violations: Vec<Violation>,
}

impl FailureCase {
    /// The smallest known reproducer.
    pub fn reproducer(&self) -> &TraceProgram {
        self.shrunk.as_ref().unwrap_or(&self.program)
    }
}

/// The result of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Aggregate counters.
    pub stats: CampaignStats,
    /// Failing traces found (bounded by `max_failures`).
    pub failures: Vec<FailureCase>,
}

impl CampaignResult {
    /// True when no invariant broke anywhere in the campaign.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn iter_seed(base: u64, i: u64) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i)
        .wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Run a fuzzing campaign: draw `iters` random programs, judge each, and
/// (optionally) shrink failures. `progress` is called after every
/// iteration with `(done, stats)` — front ends use it for status lines.
pub fn run_campaign(
    config: CampaignConfig,
    mut progress: impl FnMut(u64, &CampaignStats),
) -> CampaignResult {
    let mut stats = CampaignStats::default();
    let mut failures = Vec::new();
    let sigs = campaign_signatures(config.rules_seed);
    for i in 0..config.iters {
        let program = TraceProgram::random(iter_seed(config.seed, i));
        let outcome = run_program_with(&program, config.tweaks, &sigs);
        stats.iters += 1;
        stats.packets += outcome.packets as u64;
        if outcome.delivered {
            stats.delivered += 1;
            if outcome.split_alerted {
                stats.split_caught += 1;
            }
            if outcome.conventional_alerted {
                stats.conventional_caught += 1;
            }
        }
        if outcome.excused {
            stats.excused += 1;
        }
        if !outcome.ok() {
            stats.failing_traces += 1;
            let shrunk = if config.minimize {
                Some(crate::shrink::shrink(&program, |candidate| {
                    !run_program_with(candidate, config.tweaks, &sigs).ok()
                }))
            } else {
                None
            };
            let violations =
                run_program_with(shrunk.as_ref().unwrap_or(&program), config.tweaks, &sigs)
                    .violations;
            failures.push(FailureCase {
                program,
                shrunk,
                violations,
            });
            if config.max_failures > 0 && failures.len() >= config.max_failures {
                progress(i + 1, &stats);
                break;
            }
        }
        progress(i + 1, &stats);
    }
    CampaignResult { stats, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Mutation;

    #[test]
    fn pinned_stitch_program_is_caught_by_the_real_engine() {
        for policy in OverlapPolicy::ALL {
            let p = TraceProgram {
                seed: 11,
                policy,
                prefix_len: 90,
                suffix_len: 60,
                mutations: vec![Mutation::OverlapStitch { index: 0, chunk: 4 }],
            };
            let o = run_program(&p, EngineTweaks::NONE);
            assert!(o.delivered, "stitch must deliver under {policy}");
            assert!(
                o.split_alerted,
                "split-detect must catch stitch under {policy}"
            );
            assert!(o.ok(), "violations under {policy}: {:?}", o.violations);
        }
    }

    #[test]
    fn sabotaged_engine_misses_the_stitch() {
        let p = TraceProgram {
            seed: 12,
            policy: OverlapPolicy::First,
            prefix_len: 90,
            suffix_len: 60,
            mutations: vec![Mutation::OverlapStitch { index: 0, chunk: 4 }],
        };
        let tweaks = EngineTweaks {
            disable_out_of_order: true,
            ..EngineTweaks::NONE
        };
        let o = run_program(&p, tweaks);
        assert!(o.delivered);
        assert!(
            o.violations
                .iter()
                .any(|v| matches!(v, Violation::MissedDelivery { .. })),
            "disabling the out-of-order rule must be caught, got {:?}",
            o.violations
        );
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let config = CampaignConfig {
            iters: 24,
            seed: 5,
            ..Default::default()
        };
        let a = run_campaign(config, |_, _| {});
        let b = run_campaign(config, |_, _| {});
        assert!(a.clean(), "violations: {:?}", a.failures);
        assert_eq!(a.stats, b.stats, "campaigns must be deterministic");
        assert!(a.stats.delivered > 0, "some traces must deliver");
        assert_eq!(
            a.stats.split_caught, a.stats.delivered,
            "split-detect must catch every delivered trace"
        );
    }

    #[test]
    fn collision_flood_cannot_unstick_a_diverted_flow() {
        use crate::program::{collision_flood_packets, ORACLE_FLOW_HASH_SEED};

        // A stitch attack diverts the flow almost immediately (its train
        // regresses behind the delivered edge). Splice a 32-flow collision
        // flood into the middle of the stream against a small table at
        // occupancy: the flood fills the attack flow's probe window and
        // forces CLOCK evictions, but diversion is sticky — the evicted
        // *table* entry must not turn into a false negative.
        let p = TraceProgram {
            seed: 31,
            policy: OverlapPolicy::First,
            prefix_len: 90,
            suffix_len: 60,
            mutations: vec![Mutation::OverlapStitch { index: 0, chunk: 4 }],
        };
        let compiled = p.compile();
        let mut packets = compiled.packets.clone();
        let at = packets.len() / 3;
        packets.splice(at..at, collision_flood_packets(32, 7));

        let config = SplitDetectConfig {
            slow_path_policy: OverlapPolicy::First,
            flow_table_capacity: 1 << 10,
            flow_hash_seed: Some(ORACLE_FLOW_HASH_SEED),
            ..Default::default()
        };
        let mut engine = SplitDetect::with_config(oracle_signatures(), config)
            .expect("flood config is admissible");
        let alerts = run_trace(&mut engine, packets.iter().map(|p| p.as_slice()));
        let (attack_flow, _) = FlowKey::from_endpoints(6, compiled.client, compiled.server);
        assert!(
            alerts.iter().any(|a| a.flow == attack_flow),
            "diverted attack flow must still alert through a collision flood"
        );
        assert!(
            alerts.iter().all(|a| a.flow == attack_flow),
            "signature-free flood flows must not alert"
        );
    }

    #[test]
    fn violations_render() {
        let v = Violation::MissedDelivery {
            policy: OverlapPolicy::Last,
        };
        assert!(v.to_string().contains("last"));
        let v = Violation::ShardDivergence {
            shards: 4,
            single_alerts: 1,
            sharded_alerts: 0,
        };
        assert!(v.to_string().contains("4-shard"));
    }
}
