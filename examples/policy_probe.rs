//! Stack-model ambiguity, made visible: the same packet sequence
//! reconstructed under every overlap policy and both urgent semantics —
//! eight different application streams from identical wire bytes. This is
//! the root cause behind inconsistent-retransmission and urgent-chaff
//! evasions, and why a monolithic IPS must guess the victim's stack while
//! Split-Detect's slow path can afford to model it per target.
//!
//! Run with: `cargo run --example policy_probe`

use split_detect::packet::builder::{ip_of_frame, TcpPacketSpec};
use split_detect::packet::tcp::TcpFlags;
use split_detect::reassembly::{OverlapPolicy, UrgentSemantics};
use split_detect::traffic::victim::{receive_stream, VictimConfig};

fn main() {
    // A deliberately ambiguous conversation:
    //   1. SYN
    //   2. bytes 1..6  buffered out of order: "ATTCK" (garbage-ish copy)
    //   3. bytes 1..6  conflicting overlap:   "TTACK"
    //   4. byte  0     plugs the hole:        "A"
    //   5. bytes 6..8  with an URG-flagged chaff byte: "!!" (ptr → first '!')
    //   6. bytes 8..13 the tail: "DATA!"
    let server = "10.0.0.2";
    let pkt = |seq: u32, flags: TcpFlags, payload: &[u8], urg: u16| {
        let f = TcpPacketSpec::new("10.0.0.1:4000", &format!("{server}:80"))
            .seq(seq)
            .flags(flags)
            .urgent(urg)
            .payload(payload)
            .build();
        ip_of_frame(&f).to_vec()
    };
    let ack = TcpFlags::ACK;
    let packets = [
        pkt(999, TcpFlags::SYN, b"", 0),
        pkt(1001, ack, b"ATTCK", 0),
        pkt(1001, ack, b"TTACK", 0),
        pkt(1000, ack, b"A", 0),
        pkt(1006, ack.union(TcpFlags::URG), b"!!", 1),
        pkt(1008, ack, b"DATA!", 0),
    ];

    println!("one wire sequence, eight possible application streams:\n");
    println!(
        "{:<8} {:>12} {:>16}",
        "policy", "urgent", "application sees"
    );
    println!("{}", "-".repeat(44));
    for policy in OverlapPolicy::ALL {
        for urgent in [UrgentSemantics::DiscardOne, UrgentSemantics::Inline] {
            let cfg = VictimConfig {
                policy,
                urgent,
                ..Default::default()
            };
            let stream = receive_stream(packets.iter(), cfg, (server.parse().unwrap(), 80));
            println!(
                "{:<8} {:>12} {:>16}",
                policy.to_string(),
                match urgent {
                    UrgentSemantics::DiscardOne => "discard",
                    UrgentSemantics::Inline => "inline",
                },
                String::from_utf8_lossy(&stream),
            );
        }
    }
    println!(
        "\nAn IPS that guesses the wrong row scans a stream the victim never\n\
         saw. Split-Detect's fast path refuses to guess: overlapping and\n\
         URG-flagged traffic is diverted, and the slow path is configured\n\
         per protected host."
    );
}
