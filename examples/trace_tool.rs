//! Trace tooling: generate labelled workloads, write/read classic pcap,
//! and summarize captures — the glue that lets real traces replace the
//! synthetic generator.
//!
//! Usage:
//!   cargo run --example trace_tool -- generate out.pcap [flows] [attacks]
//!   cargo run --example trace_tool -- info some.pcap
//!   cargo run --example trace_tool -- scan some.pcap

use split_detect::core::SplitDetect;
use split_detect::ips::api::run_trace;
use split_detect::ips::{Ips, SignatureSet};
use split_detect::traffic::benign::{BenignConfig, BenignGenerator};
use split_detect::traffic::evasion::{generate, AttackSpec, EvasionStrategy};
use split_detect::traffic::mixer::mix;
use split_detect::traffic::victim::VictimConfig;
use split_detect::traffic::{pcap, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        _ => {
            eprintln!("usage: trace_tool generate|info|scan <file.pcap> [...]");
            std::process::exit(2);
        }
    }
}

fn cmd_generate(args: &[String]) {
    let path = args.first().expect("generate needs an output path");
    let flows: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let n_attacks: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(3);

    let benign = BenignGenerator::new(BenignConfig {
        flows,
        seed: 1,
        ..Default::default()
    })
    .generate();

    let victim = VictimConfig::default();
    let catalog = EvasionStrategy::catalog();
    let attacks: Vec<(Vec<Vec<u8>>, usize, &'static str)> = (0..n_attacks)
        .map(|i| {
            let strategy = catalog[i % catalog.len()];
            let mut spec = AttackSpec::simple(SignatureSet::demo().get(0).bytes.clone());
            spec.client.1 = 40_000 + i as u16;
            (
                generate(&spec, strategy, victim, i as u64),
                0,
                strategy.name(),
            )
        })
        .collect();

    let labeled = mix(benign, attacks, 9);
    pcap::save(path, &labeled.trace).expect("write pcap");
    println!(
        "wrote {}: {} packets, {} flows, {} labelled attacks",
        path,
        labeled.trace.len(),
        labeled.trace.flow_count(),
        labeled.attacks.len()
    );
    for a in &labeled.attacks {
        println!("  attack flow {} via {}", a.flow, a.strategy);
    }
}

fn load(args: &[String]) -> Trace {
    let path = args.first().expect("need a pcap path");
    pcap::load(path).expect("read pcap")
}

fn cmd_info(args: &[String]) {
    let trace = load(args);
    let span = trace
        .packets
        .last()
        .map_or(0, |p| p.ts_micros - trace.packets[0].ts_micros);
    println!(
        "{} packets, {} flows, {:.2} MB over {:.3}s",
        trace.len(),
        trace.flow_count(),
        trace.total_bytes() as f64 / 1e6,
        span as f64 / 1e6
    );
    let stats = split_detect::traffic::stats::analyze(&trace);
    println!(
        "size mix: {:.0}% ack-sized, {} small, {} mid, {} large, {} mss-sized",
        stats.sizes.ack_fraction() * 100.0,
        stats.sizes.small,
        stats.sizes.mid,
        stats.sizes.large,
        stats.sizes.mss
    );
    println!(
        "payload: {:.2} bits/byte entropy, {:.0}% printable; peak concurrency {}",
        stats.payload.entropy_bits(),
        stats.payload.printable_fraction() * 100.0,
        stats.flows.peak_concurrency
    );
    println!(
        "flow bytes: p50 {}, p95 {}, top-10% share {:.0}%",
        stats.flows.percentile(0.5),
        stats.flows.percentile(0.95),
        stats.flows.top_flow_byte_share(0.1) * 100.0
    );
}

fn cmd_scan(args: &[String]) {
    let trace = load(args);
    let mut engine = SplitDetect::new(SignatureSet::demo()).expect("demo set admissible");
    let alerts = run_trace(&mut engine, trace.iter_bytes());
    println!("{} alerts", alerts.len());
    for a in &alerts {
        println!("  {a}");
    }
    let stats = engine.stats();
    println!(
        "diverted {:.2}% of flows, {:.2}% of bytes to the slow path",
        stats.diverted_flow_fraction() * 100.0,
        stats.slow_byte_fraction() * 100.0
    );
    let _ = engine.resources();
}
