//! Quickstart: build a Split-Detect engine, throw an evasion at it, watch
//! the fast path divert and the slow path confirm.
//!
//! Run with: `cargo run --example quickstart`

use split_detect::core::{SplitDetect, SplitDetectConfig};
use split_detect::ips::api::run_trace;
use split_detect::ips::{Signature, SignatureSet};
use split_detect::traffic::evasion::{generate, AttackSpec, EvasionStrategy};
use split_detect::traffic::victim::VictimConfig;

fn main() {
    // 1. Signatures: the exact byte strings the IPS must find in any TCP
    //    stream. (Real deployments load hundreds; one is enough here.)
    let sigs = SignatureSet::from_signatures([Signature::new(
        "example-exploit",
        &b"/bin/sh -c 'cat /etc/passwd'"[..],
    )]);

    // 2. The engine. Parameters are validated against the theorem's
    //    admissible region at construction; defaults are admissible.
    let config = SplitDetectConfig::default();
    let mut engine = SplitDetect::with_config(sigs, config).expect("admissible config");
    println!(
        "engine ready: {} pieces/signature, small-segment cutoff {} bytes",
        engine.plan().pieces_per_signature(),
        engine.config().small_segment_cutoff.map_or_else(
            || format!("auto ({})", 2 * engine.plan().max_piece_len() - 1),
            |c| c.to_string()
        ),
    );

    // 3. An attacker tries the classic FragRoute trick: tiny TCP segments
    //    so the signature never appears whole in any packet.
    let spec = AttackSpec::simple(&b"/bin/sh -c 'cat /etc/passwd'"[..]);
    let packets = generate(
        &spec,
        EvasionStrategy::TinySegments { size: 4 },
        VictimConfig::default(),
        42,
    );
    println!(
        "attacker sends {} packets, none containing the signature",
        packets.len()
    );

    // 4. Run the trace.
    let alerts = run_trace(&mut engine, packets.iter().map(|p| p.as_slice()));
    for alert in &alerts {
        println!("  {alert}");
    }
    assert!(!alerts.is_empty(), "the theorem says this cannot be missed");

    // 5. What it cost: how much of the traffic took the slow path.
    let stats = engine.stats();
    println!(
        "flows diverted: {} of {} seen ({:.0}%), {} packets re-examined on the slow path",
        stats.divert.flows_diverted,
        stats.flows_seen,
        stats.diverted_flow_fraction() * 100.0,
        stats.packets_to_slow,
    );
    println!(
        "fast-path state: {} bytes provisioned; slow-path peak: {} bytes",
        stats.fast_state_bytes, stats.slow_state_peak_bytes,
    );
}
