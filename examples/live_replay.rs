//! Offered-load testing: replay a workload at increasing speed multipliers
//! until the engine stops keeping up — the software analogue of the
//! paper's "what line rate can this design sustain" question, answered by
//! bisection instead of a hardware testbed.
//!
//! Run with: `cargo run --release --example live_replay [flows] [shards] [batch]`
//!
//! With `shards > 1` the flow-sharded engine is driven instead of the
//! single instance; `batch` sets the dispatcher's per-shard batch size
//! (`shard_batch_packets`, default 64 — batch 1 reproduces the old
//! per-packet dispatch for comparison).

use split_detect::core::config::SplitDetectConfig;
use split_detect::core::{ShardedSplitDetect, SplitDetect};
use split_detect::ips::{Ips, SignatureSet};
use split_detect::telemetry::{PipelineTelemetry, Stage};
use split_detect::traffic::benign::{BenignConfig, BenignGenerator};
use split_detect::traffic::replay::replay;

/// One compact telemetry line: the counters a pipeline operator would
/// watch scroll by on a dashboard.
fn snapshot(tel: &PipelineTelemetry) {
    let r = tel.registry();
    let diverted = r
        .gauges()
        .iter()
        .find(|g| g.meta.name == "sd_diverted_flows")
        .map_or(0, |g| g.value);
    let slow = r
        .counter_by_name("sd_stage_packets_total{stage=\"slow_path\"}")
        .unwrap_or(0);
    let fast = tel.stage_latency(Stage::FastPath);
    println!(
        "  [telemetry] packets {:>7} | diverted flows {:>4} | slow-path pkts {:>6} \
         | fast-path p99 <= {} ns ({} samples)",
        tel.packets_total(),
        diverted,
        slow,
        fast.quantile_upper(0.99),
        fast.count
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut num =
        |default: usize| -> usize { args.next().and_then(|a| a.parse().ok()).unwrap_or(default) };
    let flows = num(100);
    let shards = num(1).max(1);
    let batch = num(64).max(1);

    let trace = BenignGenerator::new(BenignConfig {
        flows,
        seed: 12,
        ..Default::default()
    })
    .generate();
    let span_secs = trace
        .packets
        .last()
        .map_or(0.0, |p| p.ts_micros as f64 / 1e6);
    let gbits = trace.total_bytes() as f64 * 8.0 / 1e9;
    println!(
        "workload: {} packets, {:.2} Gbit over {:.2}s of trace time \
         ({:.2} Gbps as recorded)",
        trace.len(),
        gbits,
        span_secs,
        gbits / span_secs
    );
    if shards > 1 {
        println!("engine: {shards} shards, dispatch batch {batch} packets\n");
    } else {
        println!("engine: single instance\n");
    }

    let config = SplitDetectConfig {
        shard_batch_packets: batch,
        ..Default::default()
    };

    // Find the largest speed multiplier the engine sustains (max per-packet
    // lateness under 5 ms) by doubling then bisecting.
    // "Keeps up" = the replay finished within 10% (+2 ms scheduling slack)
    // of its scheduled duration; beyond that the engine is the bottleneck.
    let sustains = |speed: f64| {
        let mut alerts = Vec::new();
        let report = if shards > 1 {
            let mut engine =
                ShardedSplitDetect::new(SignatureSet::demo(), config, shards).expect("admissible");
            let report = replay(&trace, speed, |pkt, tick| {
                engine.process_packet(pkt, tick, &mut alerts)
            });
            engine.finish(&mut alerts);
            report
        } else {
            let mut engine =
                SplitDetect::with_config(SignatureSet::demo(), config).expect("admissible");
            let report = replay(&trace, speed, |pkt, tick| {
                engine.process_packet(pkt, tick, &mut alerts)
            });
            engine.finish(&mut alerts);
            report
        };
        let ok = report.elapsed_secs <= report.target_secs * 1.10 + 0.002;
        println!(
            "  speed {speed:>7.0}x → offered {:>8.2} Gbps, took {:>7.1} ms (target {:>7.1})  {}",
            gbits / span_secs * speed,
            report.elapsed_secs * 1e3,
            report.target_secs * 1e3,
            if ok { "keeps up" } else { "FALLS BEHIND" }
        );
        ok
    };

    let mut lo = 1.0f64;
    let mut hi = 1.0f64;
    println!("doubling until the engine falls behind:");
    while sustains(hi) && hi < 65_536.0 {
        lo = hi;
        hi *= 2.0;
    }
    println!("\nbisecting between {lo:.0}x and {hi:.0}x:");
    for _ in 0..5 {
        let mid = (lo + hi) / 2.0;
        if sustains(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // One more run at the sustained multiplier, this time watching the
    // pipeline's own telemetry: quarter-trace snapshots while the replay
    // is live (single engine — the sharded registries live on the workers
    // until finish), and the merged registry at the end.
    println!("\nreplaying once more at {lo:.0}x with telemetry snapshots:");
    let every = (trace.len() / 4).max(1);
    let mut alerts = Vec::new();
    if shards > 1 {
        let mut engine =
            ShardedSplitDetect::new(SignatureSet::demo(), config, shards).expect("admissible");
        replay(&trace, lo, |pkt, tick| {
            engine.process_packet(pkt, tick, &mut alerts)
        });
        engine.finish(&mut alerts);
        snapshot(engine.telemetry().expect("finished"));
    } else {
        let mut engine =
            SplitDetect::with_config(SignatureSet::demo(), config).expect("admissible");
        let mut seen = 0usize;
        replay(&trace, lo, |pkt, tick| {
            engine.process_packet(pkt, tick, &mut alerts);
            seen += 1;
            if seen.is_multiple_of(every) {
                snapshot(engine.telemetry());
            }
        });
        engine.finish(&mut alerts);
        snapshot(engine.telemetry());
    }
    println!(
        "\nsustained offered load on this machine: ~{:.2} Gbps ({:.0}x trace speed).\n\
         The interesting number is the *ratio* to the conventional engine\n\
         (`cargo run -p sd-bench --release --bin experiments -- e6`), not the\n\
         absolute figure — the paper's 20 Gbps assumed line-card hardware.",
        gbits / span_secs * lo,
        lo
    );
}
