//! State and processing comparison on benign traffic — the cost side of
//! the paper's argument, interactively.
//!
//! Pushes an identical benign workload through the conventional
//! reassembling IPS and Split-Detect and prints where the bytes and the
//! state went.
//!
//! Run with: `cargo run --release --example ips_compare [flows]`

use split_detect::core::SplitDetect;
use split_detect::ips::{ConventionalIps, Ips, SignatureSet};
use split_detect::traffic::benign::{BenignConfig, BenignGenerator};

fn main() {
    let flows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);

    // Concurrent sessions: all `flows` connections open at once — this is
    // the sizing point the paper argues about ("state for 1 M
    // connections"), scaled to laptop size. Both engines are provisioned
    // for the same concurrency.
    println!("generating workload: {flows} concurrent sessions...");
    let mut gen = BenignGenerator::new(BenignConfig {
        seed: 7,
        ..Default::default()
    });
    let trace = gen.generate_concurrent(flows, 32 * 1024);
    println!(
        "  {} packets, {:.1} MB, {} flows\n",
        trace.len(),
        trace.total_bytes() as f64 / 1e6,
        trace.flow_count()
    );

    let sigs = SignatureSet::demo;

    let mut conv = ConventionalIps::new(sigs());
    let mut out = Vec::new();
    for (tick, pkt) in trace.iter_bytes().enumerate() {
        conv.process_packet(pkt, tick as u64, &mut out);
    }
    let conv_res = conv.resources();

    let sd_config = split_detect::core::SplitDetectConfig {
        flow_table_capacity: flows * 2, // 50% occupancy headroom
        ..Default::default()
    };
    let mut sd =
        SplitDetect::with_config(sigs(), sd_config).expect("demo signatures are admissible");
    for (tick, pkt) in trace.iter_bytes().enumerate() {
        sd.process_packet(pkt, tick as u64, &mut out);
    }
    let sd_res = sd.resources();
    let sd_stats = sd.stats();

    assert!(out.is_empty(), "benign trace must not alert");

    println!(
        "{:<34} {:>16} {:>16} {:>8}",
        "metric", "conventional", "split-detect", "ratio"
    );
    println!("{}", "-".repeat(78));
    let row = |name: &str, conv: u64, sd: u64| {
        let ratio = if conv == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", sd as f64 / conv as f64 * 100.0)
        };
        println!("{name:<34} {conv:>16} {sd:>16} {ratio:>8}");
    };
    // Per-connection state is the axis that scales with concurrency — the
    // paper's "state for 1 M connections". The delay line and automata are
    // fixed shared structures a line card provisions once.
    row(
        "per-connection state (bytes)",
        conv_res.state_bytes_peak,
        sd_stats.fast_state_bytes,
    );
    row(
        "bytes scanned by matcher",
        conv_res.bytes_scanned,
        sd_res.bytes_scanned,
    );
    row(
        "bytes copied into buffers",
        conv_res.bytes_buffered_total,
        sd_res.bytes_buffered_total,
    );
    println!(
        "{:<34} {:>16} {:>16}",
        "shared delay line (bytes)", "-", sd_stats.divert_state_bytes
    );
    println!(
        "{:<34} {:>16} {:>16}",
        "matcher automaton (bytes)",
        conv.automaton_bytes(),
        sd_stats.automaton_bytes
    );

    println!(
        "\nsplit-detect internals: {:.2}% of flows diverted, {:.2}% of packets and \
         {:.2}% of bytes re-examined on the slow path",
        sd_stats.diverted_flow_fraction() * 100.0,
        sd_stats.slow_packet_fraction() * 100.0,
        sd_stats.slow_byte_fraction() * 100.0,
    );
    println!(
        "divert reasons: piece={} small={} out-of-order={} fragment={}",
        sd_stats.diverts_by(split_detect::core::fastpath::DivertReason::PieceMatch),
        sd_stats.diverts_by(split_detect::core::fastpath::DivertReason::SmallSegments),
        sd_stats.diverts_by(split_detect::core::fastpath::DivertReason::OutOfOrder),
        sd_stats.diverts_by(split_detect::core::fastpath::DivertReason::Fragment),
    );
}
