//! The evasion gauntlet, interactively: every Ptacek–Newsham / FragRoute
//! strategy against the three engines, printed as the detection matrix the
//! paper's evaluation opens with.
//!
//! Run with: `cargo run --example evasion_gauntlet`

use split_detect::core::{SplitDetect, SplitDetectConfig};
use split_detect::ips::api::run_trace;
use split_detect::ips::{ConventionalIps, NaivePacketIps, Signature, SignatureSet};
use split_detect::reassembly::OverlapPolicy;
use split_detect::traffic::evasion::{generate, AttackSpec, EvasionStrategy};
use split_detect::traffic::victim::{receive_stream, VictimConfig};

const SIG: &[u8] = b"EVIL_SIGNATURE_BYTES";

fn sigs() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("evil", SIG)])
}

fn main() {
    let victim = VictimConfig {
        policy: OverlapPolicy::First,
        ..Default::default()
    };

    println!(
        "victim stack: policy={}, {} hops away\n",
        victim.policy, victim.hops_to_victim
    );
    println!(
        "{:<28} {:>9} {:>13} {:>13} {:>8}",
        "evasion strategy", "delivers?", "naive-packet", "conventional", "split-detect"
    );
    println!("{}", "-".repeat(76));

    for strategy in EvasionStrategy::catalog() {
        let spec = AttackSpec::simple(SIG);
        let packets = generate(&spec, strategy, victim, 2026);

        // Does the attack still work? (If not, nothing below matters.)
        let delivered = receive_stream(packets.iter(), victim, spec.server);
        let works = delivered == spec.payload();

        let verdict = |hit: bool| if hit { "DETECT" } else { "miss" };

        let mut naive = NaivePacketIps::new(sigs());
        let naive_hit = run_trace(&mut naive, packets.iter().map(|p| p.as_slice()))
            .iter()
            .any(|a| a.signature == 0);

        let mut conv = ConventionalIps::new(sigs());
        let conv_hit = run_trace(&mut conv, packets.iter().map(|p| p.as_slice()))
            .iter()
            .any(|a| a.signature == 0);

        let mut sd =
            SplitDetect::with_config(sigs(), SplitDetectConfig::default()).expect("admissible");
        let sd_hit = run_trace(&mut sd, packets.iter().map(|p| p.as_slice()))
            .iter()
            .any(|a| a.signature == 0);

        println!(
            "{:<28} {:>9} {:>13} {:>13} {:>8}",
            strategy.name(),
            if works { "yes" } else { "NO!" },
            verdict(naive_hit),
            verdict(conv_hit),
            verdict(sd_hit),
        );
    }

    println!(
        "\nThe strawman falls to every real evasion; both stateful engines detect\n\
         everything — Split-Detect while reassembling only the diverted flows."
    );
}
