//! Fault-injection / fuzz-style robustness: an IPS sits on the attack
//! path, so *no input bytes may ever panic it* — malformed packets,
//! bit-flipped captures, truncated files, adversarial rule text. Every
//! component that touches untrusted bytes is hammered here; errors are
//! fine, panics are bugs.

use proptest::prelude::*;
use split_detect::core::SplitDetect;
use split_detect::ips::rules::parse_rules;
use split_detect::ips::{ConventionalIps, Ips, NaivePacketIps, Signature, SignatureSet};
use split_detect::packet::builder::{ip_of_frame, TcpPacketSpec};
use split_detect::packet::parse::{parse_ethernet, parse_ipv4};
use split_detect::reassembly::{Defragmenter, Normalizer, OverlapPolicy, TcpStreamReassembler};
use split_detect::traffic::pcap;

fn sigs() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("evil", &b"EVIL_SIGNATURE_BYTES"[..])])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parsers accept arbitrary bytes without panicking.
    #[test]
    fn parsers_never_panic(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = parse_ipv4(&data);
        let _ = parse_ethernet(&data);
        let mut n = Normalizer::new();
        let _ = n.check_ipv4(&data);
    }

    /// All three engines digest arbitrary bytes without panicking, and
    /// never alert on garbage (garbage cannot contain a valid TCP stream).
    #[test]
    fn engines_never_panic_on_garbage(
        packets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 1..40),
    ) {
        let mut engines: Vec<Box<dyn Ips>> = vec![
            Box::new(NaivePacketIps::new(sigs())),
            Box::new(ConventionalIps::new(sigs())),
            Box::new(SplitDetect::new(sigs()).unwrap()),
        ];
        for engine in &mut engines {
            let mut out = Vec::new();
            for (tick, p) in packets.iter().enumerate() {
                engine.process_packet(p, tick as u64, &mut out);
            }
            engine.finish(&mut out);
            let _ = engine.resources();
        }
    }

    /// Bit-flipped *valid* packets: the realistic corruption model. The
    /// engines must survive, and the conventional engine's normalizer must
    /// reject payload corruption (the checksum no longer matches).
    #[test]
    fn engines_survive_bit_flips(
        payload_len in 1usize..600,
        flip_byte in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        let frame = TcpPacketSpec::new("10.0.0.1:1234", "10.0.0.2:80")
            .seq(100)
            .payload(&vec![b'd'; payload_len])
            .build();
        let mut pkt = ip_of_frame(&frame).to_vec();
        let idx = flip_byte % pkt.len();
        pkt[idx] ^= 1 << flip_bit;

        let mut engines: Vec<Box<dyn Ips>> = vec![
            Box::new(NaivePacketIps::new(sigs())),
            Box::new(ConventionalIps::new(sigs())),
            Box::new(SplitDetect::new(sigs()).unwrap()),
        ];
        for engine in &mut engines {
            let mut out = Vec::new();
            engine.process_packet(&pkt, 0, &mut out);
            engine.finish(&mut out);
            prop_assert!(out.is_empty(), "{} alerted on corrupted benign data", engine.name());
        }
    }

    /// The reassembly substrate takes arbitrary (seq, data) sequences.
    #[test]
    fn reassembler_never_panics(
        pushes in prop::collection::vec((any::<u32>(), prop::collection::vec(any::<u8>(), 0..64)), 0..40),
        syn in any::<Option<u32>>(),
    ) {
        for policy in OverlapPolicy::ALL {
            let mut r = TcpStreamReassembler::new(policy);
            if let Some(s) = syn {
                r.on_syn(split_detect::packet::SeqNumber(s));
            }
            for (seq, data) in &pushes {
                r.push(split_detect::packet::SeqNumber(*seq), data);
                r.on_fin(split_detect::packet::SeqNumber(seq.wrapping_add(1)));
            }
            let _ = r.drain();
            let _ = r.memory_bytes();
        }
    }

    /// The defragmenter takes arbitrary bytes.
    #[test]
    fn defragmenter_never_panics(
        packets in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 0..30),
    ) {
        let mut d = Defragmenter::new(OverlapPolicy::First);
        for (tick, p) in packets.iter().enumerate() {
            let _ = d.push(p, tick as u64);
        }
        let _ = d.memory_bytes();
    }

    /// pcap reading: arbitrary bytes produce errors, never panics; and a
    /// valid file truncated anywhere never panics.
    #[test]
    fn pcap_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::read_trace(&data[..]);
    }

    #[test]
    fn truncated_pcap_is_an_error_not_a_panic(cut in 0usize..10_000) {
        let trace = split_detect::traffic::Trace::from_packets(vec![
            split_detect::traffic::TracePacket::new(
                0,
                ip_of_frame(
                    &TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
                        .payload(&[b'x'; 100])
                        .build(),
                )
                .to_vec(),
            ),
        ]);
        let mut buf = Vec::new();
        pcap::write_trace(&mut buf, &trace).unwrap();
        buf.truncate(cut % (buf.len() + 1));
        let _ = pcap::read_trace(&buf[..]);
    }

    /// The rule parser takes arbitrary text.
    #[test]
    fn rule_parser_never_panics(text in "\\PC{0,300}") {
        let _ = parse_rules(&text);
        let _ = parse_rules(&format!("alert tcp any any -> any any ({text})"));
    }
}

/// Deterministic edge cases that random generation is unlikely to hit.
#[test]
fn handcrafted_hostile_packets() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],         // empty
        vec![0x45],     // one byte of a header
        vec![0x45; 19], // one short of a full IPv4 header
        vec![0xff; 64], // all-ones
        {
            // Valid header claiming total_len larger than the buffer.
            let f = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
                .payload(b"abc")
                .build();
            let mut p = ip_of_frame(&f).to_vec();
            p[2] = 0xff; // total_len high byte
            p
        },
        {
            // IHL pointing past the buffer.
            let f = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2").build();
            let mut p = ip_of_frame(&f).to_vec();
            p[0] = 0x4f; // IHL = 15 → 60-byte header on a 40-byte packet
            p
        },
        {
            // TCP data offset beyond the segment.
            let f = TcpPacketSpec::new("10.0.0.1:1", "10.0.0.2:2")
                .payload(b"x")
                .build();
            let mut p = ip_of_frame(&f).to_vec();
            p[20 + 12] = 0xf0; // data offset = 15 words
            p
        },
    ];
    let mut engines: Vec<Box<dyn Ips>> = vec![
        Box::new(NaivePacketIps::new(sigs())),
        Box::new(ConventionalIps::new(sigs())),
        Box::new(SplitDetect::new(sigs()).unwrap()),
    ];
    for engine in &mut engines {
        let mut out = Vec::new();
        for (tick, p) in cases.iter().enumerate() {
            engine.process_packet(p, tick as u64, &mut out);
        }
        engine.finish(&mut out);
        assert!(
            out.is_empty(),
            "{} alerted on hostile garbage",
            engine.name()
        );
    }
}
