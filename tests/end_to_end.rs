//! Cross-crate end-to-end tests: workload generation → pcap round trip →
//! engine → alerts, exactly the path a user of the library walks.

use split_detect::core::{SplitDetect, SplitDetectConfig};
use split_detect::ips::api::run_trace;
use split_detect::ips::{ConventionalIps, Ips, NaivePacketIps, Signature, SignatureSet};
use split_detect::traffic::benign::{BenignConfig, BenignGenerator};
use split_detect::traffic::evasion::{generate, AttackSpec, EvasionStrategy};
use split_detect::traffic::mixer::mix;
use split_detect::traffic::pcap;
use split_detect::traffic::victim::VictimConfig;

const SIG: &[u8] = b"EVIL_SIGNATURE_BYTES";

fn sigs() -> SignatureSet {
    SignatureSet::from_signatures([Signature::new("evil", SIG)])
}

#[test]
fn pcap_roundtrip_preserves_detection() {
    let benign = BenignGenerator::new(BenignConfig {
        flows: 12,
        seed: 3,
        ..Default::default()
    })
    .generate();
    let spec = AttackSpec::simple(SIG);
    let attack = generate(
        &spec,
        EvasionStrategy::TinySegments { size: 4 },
        VictimConfig::default(),
        5,
    );
    let labeled = mix(benign, vec![(attack, 0, "tiny-segments")], 8);

    // Serialize and reload through the pcap layer.
    let mut buf = Vec::new();
    pcap::write_trace(&mut buf, &labeled.trace).unwrap();
    let reloaded = pcap::read_trace(&buf[..]).unwrap();
    assert_eq!(reloaded, labeled.trace);

    let mut engine = SplitDetect::new(sigs()).unwrap();
    let alerts = run_trace(&mut engine, reloaded.iter_bytes());
    assert!(alerts.iter().any(|a| a.flow == labeled.attacks[0].flow));
    for a in &alerts {
        assert!(labeled.is_attack(&a.flow), "false positive on {}", a.flow);
    }
}

#[test]
fn all_three_engines_implement_the_same_trait() {
    let spec = AttackSpec::simple(SIG);
    let packets = generate(&spec, EvasionStrategy::None, VictimConfig::default(), 1);

    let mut engines: Vec<Box<dyn Ips>> = vec![
        Box::new(NaivePacketIps::new(sigs())),
        Box::new(ConventionalIps::new(sigs())),
        Box::new(SplitDetect::new(sigs()).unwrap()),
    ];
    for engine in &mut engines {
        let mut alerts = Vec::new();
        for (tick, p) in packets.iter().enumerate() {
            engine.process_packet(p, tick as u64, &mut alerts);
        }
        engine.finish(&mut alerts);
        assert!(
            alerts.iter().any(|a| a.signature == 0),
            "{} missed the unevaded baseline",
            engine.name()
        );
        let r = engine.resources();
        assert_eq!(r.packets, packets.len() as u64);
        assert!(r.bytes_scanned > 0);
    }
}

#[test]
fn split_detect_state_tracks_concurrency_not_bytes() {
    // Same byte volume, 10× concurrency difference: Split-Detect's state
    // depends on the table provisioned for concurrency, not on stream
    // volume; the conventional engine's grows with live connections.
    let sigs_fn = sigs;
    let mut small = BenignGenerator::new(BenignConfig {
        seed: 5,
        ..Default::default()
    });
    let trace_10 = small.generate_concurrent(10, 64 * 1024);
    let trace_100 = small.generate_concurrent(100, 6_400);

    let run = |trace: &split_detect::traffic::Trace| {
        let mut conv = ConventionalIps::new(sigs_fn());
        let mut out = Vec::new();
        for (tick, p) in trace.iter_bytes().enumerate() {
            conv.process_packet(p, tick as u64, &mut out);
        }
        conv.resources().state_bytes_peak
    };
    let conv_10 = run(&trace_10);
    let conv_100 = run(&trace_100);
    assert!(
        conv_100 > conv_10 * 5,
        "conventional state must scale with concurrency: {conv_10} vs {conv_100}"
    );
}

#[test]
fn demo_signature_set_is_admissible_and_detectable() {
    let sigs = SignatureSet::demo();
    let config = SplitDetectConfig::default();
    let mut engine = SplitDetect::with_config(sigs, config).expect("demo set admissible");

    // Attack with each demo signature, unevaded.
    let demo = SignatureSet::demo();
    for (id, sig) in demo.iter() {
        let mut spec = AttackSpec::simple(sig.bytes.clone());
        spec.client.1 = 50_000 + id as u16;
        let packets = generate(&spec, EvasionStrategy::None, VictimConfig::default(), 1);
        let alerts = run_trace(&mut engine, packets.iter().map(|p| p.as_slice()));
        assert!(
            alerts.iter().any(|a| a.signature == id),
            "demo signature {} ({}) missed",
            id,
            sig.name
        );
    }
}

#[test]
fn udp_attacks_detected_without_reassembly_state() {
    use split_detect::packet::builder::{ip_of_frame, UdpPacketSpec};
    let mut payload = b"dns chaff ".to_vec();
    payload.extend_from_slice(SIG);
    let pkt = UdpPacketSpec::new("10.3.0.1:5353", "10.0.0.2:53")
        .payload(&payload)
        .build();
    let mut engine = SplitDetect::new(sigs()).unwrap();
    let alerts = run_trace(&mut engine, [ip_of_frame(&pkt)]);
    assert_eq!(alerts.len(), 1);
}
