//! The shipped rule corpus (`rules/demo.rules`) exercised end-to-end:
//! parse → lint → build engines → attack with every rule's signature under
//! an evasion → detect. This is the adoption path a downstream user walks
//! with their own Snort rules.

use split_detect::core::SplitDetect;
use split_detect::ips::api::run_trace;
use split_detect::ips::rules::parse_rules;
use split_detect::traffic::evasion::{generate, AttackSpec, EvasionStrategy};
use split_detect::traffic::victim::{receive_stream, VictimConfig};

fn corpus() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/rules/demo.rules");
    std::fs::read_to_string(path).expect("rules/demo.rules ships with the repo")
}

#[test]
fn corpus_parses_with_expected_shape() {
    let set = parse_rules(&corpus()).unwrap();
    assert_eq!(set.rules.len(), 14, "14 alert rules");
    assert_eq!(set.skipped_actions, 1, "the pass rule is skipped");
    assert_eq!(set.nocase_ignored, 1);

    // Hex escapes decoded: the NOP sled rule is raw 0x90 bytes.
    let sled = set.rules.iter().find(|r| r.sid == 2000006).unwrap();
    assert_eq!(sled.signature_bytes(), &[0x90u8; 16][..]);
    // The continuation rule survived joining.
    let wiz = set.rules.iter().find(|r| r.sid == 2000009).unwrap();
    assert_eq!(wiz.signature_bytes(), b"WIZ give-me-a-shell-please");
    // Multi-content picks the longest.
    let trav = set.rules.iter().find(|r| r.sid == 2000013).unwrap();
    assert_eq!(trav.signature_bytes(), b"/../../../../../../etc/shadow");
    // Header fields preserved verbatim.
    assert_eq!(set.rules[0].src, "$EXTERNAL_NET");
}

#[test]
fn corpus_is_admissible_and_every_rule_detects_under_evasion() {
    let set = parse_rules(&corpus()).unwrap();
    let sigs = set.to_signatures();
    let mut engine = SplitDetect::new(sigs).expect("shipped corpus must be admissible");

    let victim = VictimConfig::default();
    for (id, rule) in set.rules.iter().enumerate() {
        let mut spec = AttackSpec::simple(rule.signature_bytes().to_vec());
        spec.client.1 = 52_000 + id as u16;
        let packets = generate(
            &spec,
            EvasionStrategy::TinySegments { size: 4 },
            victim,
            id as u64,
        );
        assert_eq!(
            receive_stream(packets.iter(), victim, spec.server),
            spec.payload(),
            "attack for sid {} must deliver",
            rule.sid
        );
        let alerts = run_trace(&mut engine, packets.iter().map(|p| p.as_slice()));
        assert!(
            alerts.iter().any(|a| a.signature == id),
            "sid {} missed under tiny-segment evasion",
            rule.sid
        );
    }
}

#[test]
fn corpus_triggers_no_alerts_on_benign_traffic() {
    use split_detect::traffic::benign::{BenignConfig, BenignGenerator};
    let set = parse_rules(&corpus()).unwrap();
    let mut engine = SplitDetect::new(set.to_signatures()).unwrap();
    let trace = BenignGenerator::new(BenignConfig {
        flows: 60,
        seed: 99,
        ..Default::default()
    })
    .generate();
    let alerts = run_trace(&mut engine, trace.iter_bytes());
    assert!(
        alerts.is_empty(),
        "demo corpus must not false-alert: {alerts:?}"
    );
}
