//! # split-detect — facade crate
//!
//! Re-exports the whole Split-Detect reproduction workspace under one name,
//! so examples and integration tests can write `split_detect::…`. See the
//! individual crates for the real documentation:
//!
//! * [`packet`] (`sd-packet`) — wire formats,
//! * [`strmatch`] (`sd-match`) — string-matching engines,
//! * [`flow`] (`sd-flow`) — flow keys and compact state tables,
//! * [`reassembly`] (`sd-reassembly`) — defragmentation, stream reassembly,
//!   normalization,
//! * [`ips`] (`sd-ips`) — the `Ips` trait and the baseline engines,
//! * [`traffic`] (`sd-traffic`) — trace model, generators, evasions, pcap,
//! * [`telemetry`] (`sd-telemetry`) — metric registry and exporters,
//! * [`core`] (`splitdetect`) — the paper's contribution.

#![forbid(unsafe_code)]

pub use sd_flow as flow;
pub use sd_ips as ips;
pub use sd_match as strmatch;
pub use sd_packet as packet;
pub use sd_reassembly as reassembly;
pub use sd_telemetry as telemetry;
pub use sd_traffic as traffic;
pub use splitdetect as core;
