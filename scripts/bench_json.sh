#!/usr/bin/env bash
# Record the performance benchmarks as machine-readable JSON.
#
# Builds the release `sd` binary, runs the three baseline-feeding
# experiments through the provenance harness (`sd lab run`), journaling
# every trial — full config, git commit + dirty flag, rustc version —
# into lab-journal.jsonl, then regenerates BENCH_fastpath.json,
# BENCH_slowpath.json and BENCH_flowstate.json from the journal with
# `sd lab emit`, all in the repo root, so the matcher throughput
# trajectory, the slow-path dispatch speedup, and the flow-table
# occupancy sweep are checked in next to the code that changed them.
# `sd lab compare` (or scripts/bench_compare.py) diffs fresh copies of
# these files against the checked-in baselines in the CI
# perf-regression gate.
#
# Pass --smoke for the short CI profile, or extra `sd lab run` flags
# (e.g. --rounds N) through "$@". The journal is append-only: re-runs
# accumulate history, and emit always reads the latest run per
# experiment.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p sd-cli
SD=target/release/sd

for experiment in fastpath-matcher-mix slowpath-lane-shed flowstate-occupancy; do
  "$SD" lab run "$experiment" --journal lab-journal.jsonl "$@"
done
"$SD" lab emit --journal lab-journal.jsonl --out-dir .
echo "journal: $PWD/lab-journal.jsonl"
