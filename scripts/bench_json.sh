#!/usr/bin/env bash
# Record the performance benchmarks as machine-readable JSON.
#
# Runs the `fastpath` bench with SD_FASTPATH_JSON pointed at
# BENCH_fastpath.json and the `slowpath` bench with SD_SLOWPATH_JSON
# pointed at BENCH_slowpath.json, both in the repo root, so the matcher
# throughput trajectory and the slow-path dispatch speedup are checked
# in next to the code that changed them. `scripts/bench_compare.py`
# diffs a fresh pair of these files against the checked-in baselines in
# the CI perf-regression gate. Pass SD_FASTPATH_ENFORCE=1 /
# SD_SLOWPATH_ENFORCE=1 to also fail on the benches' own invariants
# (prefiltered >= dense; pooled ingest >= 2x inline).
set -euo pipefail
cd "$(dirname "$0")/.."
SD_FASTPATH_JSON="$PWD/BENCH_fastpath.json" cargo bench -p sd-bench --bench fastpath "$@"
echo "recorded $PWD/BENCH_fastpath.json"
SD_SLOWPATH_JSON="$PWD/BENCH_slowpath.json" cargo bench -p sd-bench --bench slowpath "$@"
echo "recorded $PWD/BENCH_slowpath.json"
