#!/usr/bin/env bash
# Record the fast-path matcher benchmark as machine-readable JSON.
#
# Runs the `fastpath` bench (release profile) with SD_FASTPATH_JSON
# pointed at BENCH_fastpath.json in the repo root, so the dense /
# classed / classed+prefilter throughput trajectory is checked in next
# to the code that changed it. Pass SD_FASTPATH_ENFORCE=1 to also fail
# unless the prefiltered engine is no slower than dense on the benign
# mix (the CI smoke gate).
set -euo pipefail
cd "$(dirname "$0")/.."
SD_FASTPATH_JSON="$PWD/BENCH_fastpath.json" cargo bench -p sd-bench --bench fastpath "$@"
echo "recorded $PWD/BENCH_fastpath.json"
