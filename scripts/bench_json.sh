#!/usr/bin/env bash
# Record the performance benchmarks as machine-readable JSON.
#
# Runs the `fastpath` bench with SD_FASTPATH_JSON pointed at
# BENCH_fastpath.json, the `slowpath` bench with SD_SLOWPATH_JSON
# pointed at BENCH_slowpath.json, and the `flowstate` bench with
# SD_FLOWSTATE_JSON pointed at BENCH_flowstate.json, all in the repo
# root, so the matcher throughput trajectory, the slow-path dispatch
# speedup, and the flow-table occupancy sweep are checked in next to
# the code that changed them. `scripts/bench_compare.py` diffs fresh
# copies of these files against the checked-in baselines in the CI
# perf-regression gate. Pass SD_FASTPATH_ENFORCE=1 /
# SD_SLOWPATH_ENFORCE=1 to also fail on the benches' own invariants
# (prefiltered >= dense; tiered >= 1.5x sparse at <= 2x sparse bytes
# on the 10k-rule corpus; pooled ingest >= 2x inline).
set -euo pipefail
cd "$(dirname "$0")/.."
SD_FASTPATH_JSON="$PWD/BENCH_fastpath.json" cargo bench -p sd-bench --bench fastpath "$@"
echo "recorded $PWD/BENCH_fastpath.json"
SD_SLOWPATH_JSON="$PWD/BENCH_slowpath.json" cargo bench -p sd-bench --bench slowpath "$@"
echo "recorded $PWD/BENCH_slowpath.json"
SD_FLOWSTATE_JSON="$PWD/BENCH_flowstate.json" cargo bench -p sd-bench --bench flowstate "$@"
echo "recorded $PWD/BENCH_flowstate.json"
