#!/usr/bin/env python3
"""Compare freshly-measured benchmark JSON against checked-in baselines.

Usage:
    bench_compare.py [--threshold 0.15] [--mem-threshold 0.15] \\
        BASELINE CURRENT [BASELINE CURRENT ...]

Each file is one of the ``BENCH_*.json`` records written by ``sd lab
emit`` (see ``scripts/bench_json.sh``): an object with a ``results``
array whose rows mix identity fields (strings, e.g.
``mix``/``matcher``/``mode``) and metric fields (numbers). Two kinds of
metric are gated:

* Throughput — any numeric results field whose name contains
  ``mib_per_s``, ``gbps`` or ``throughput``. Higher-is-better medians; a
  row regresses when the current value drops more than ``--threshold``
  (default 15%) below the baseline.
* Memory — the per-matcher ``automaton_10k`` footprint ``bytes`` and the
  flow table's top-level ``slot_bytes``, when the file carries them.
  Lower-is-better; a row regresses when the current value grows more
  than ``--mem-threshold`` (default 15%) above the baseline.

Rows or metrics present on only one side are reported but never fail
the gate (benches grow new modes; old baselines lag a commit behind).

Prints a markdown delta table to stdout and, when running under GitHub
Actions, appends it to ``$GITHUB_STEP_SUMMARY``. Exits non-zero iff any
metric regressed beyond its tolerance. Standard library only; the same
comparison is implemented in Rust as ``sd lab compare`` (crates/lab),
and the two must stay in lockstep — ``scripts/test_bench_compare.py``
pins this side's behaviour.
"""

import argparse
import json
import os
import sys

METRIC_MARKERS = ("mib_per_s", "gbps", "throughput")

THROUGHPUT = "throughput"
MEMORY = "memory"


def is_throughput(name, value):
    return isinstance(value, (int, float)) and any(m in name for m in METRIC_MARKERS)


def row_key(row):
    """Identity of a result row: its string-valued fields, in key order."""
    parts = [f"{k}={v}" for k, v in sorted(row.items()) if isinstance(v, str)]
    return " ".join(parts) or "<anonymous row>"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("results")
    if not isinstance(rows, list):
        sys.exit(f"{path}: no 'results' array")
    table = {}
    for row in rows:
        metrics = {
            k: (float(v), THROUGHPUT) for k, v in row.items() if is_throughput(k, v)
        }
        if not metrics:
            sys.exit(f"{path}: row {row_key(row)!r} has no throughput metric")
        table[row_key(row)] = metrics
    # Memory gate rows: key shape is row_key over the identity dict, so the
    # table reads the same whether sd lab compare or this script produced it.
    for matcher, inner in (doc.get("automaton_10k") or {}).items():
        if isinstance(inner, dict) and isinstance(inner.get("bytes"), (int, float)):
            key = row_key({"section": "automaton_10k", "matcher": matcher})
            table.setdefault(key, {})["bytes"] = (float(inner["bytes"]), MEMORY)
    if isinstance(doc.get("slot_bytes"), (int, float)):
        key = row_key({"section": "meta"})
        table.setdefault(key, {})["slot_bytes"] = (float(doc["slot_bytes"]), MEMORY)
    return doc.get("bench", os.path.basename(path)), table


def compare(base_path, cur_path, threshold, mem_threshold):
    bench, base = load(base_path)
    _, cur = load(cur_path)
    lines = []
    failures = []
    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            lines.append((bench, key, "-", "absent", "absent", "-", "row dropped"))
            continue
        if key not in base:
            lines.append((bench, key, "-", "absent", "absent", "-", "new row"))
            continue
        for metric in sorted(set(base[key]) | set(cur[key])):
            if metric not in base[key] or metric not in cur[key]:
                lines.append((bench, key, metric, "absent", "absent", "-", "new metric"))
                continue
            (b, kind) = base[key][metric]
            (c, _) = cur[key][metric]
            delta = (c - b) / b if b else 0.0
            if kind == MEMORY:
                regressed = delta > mem_threshold
                rule = f"(>{mem_threshold:.0%} growth)"
            else:
                regressed = delta < -threshold
                rule = f"(>{threshold:.0%} drop)"
            status = "REGRESSED" if regressed else "ok"
            lines.append(
                (bench, key, metric, f"{b:.1f}", f"{c:.1f}", f"{delta:+.1%}", status)
            )
            if regressed:
                failures.append(f"{bench}: {key} {metric} {delta:+.1%} {rule}")
    return lines, failures


def markdown(all_lines, threshold, mem_threshold):
    out = [
        "### Bench regression gate "
        f"(throughput fail below -{threshold:.0%}, "
        f"memory fail above +{mem_threshold:.0%})",
        "",
    ]
    out.append("| bench | row | metric | baseline | current | delta | status |")
    out.append("|---|---|---|---:|---:|---:|---|")
    for line in all_lines:
        out.append("| " + " | ".join(str(x) for x in line) + " |")
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--mem-threshold", type=float, default=0.15)
    ap.add_argument("files", nargs="+", metavar="BASELINE CURRENT")
    args = ap.parse_args()
    if len(args.files) % 2:
        ap.error("files must come in BASELINE CURRENT pairs")

    all_lines = []
    failures = []
    for i in range(0, len(args.files), 2):
        lines, fails = compare(
            args.files[i], args.files[i + 1], args.threshold, args.mem_threshold
        )
        all_lines.extend(lines)
        failures.extend(fails)

    table = markdown(all_lines, args.threshold, args.mem_threshold)
    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
