#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py (standard library only).

Run directly (``python3 scripts/test_bench_compare.py``) or via unittest
discovery. These pin the gate's behaviour — row keys, tolerance edges,
memory direction, delta formatting — so the Rust twin (``sd lab
compare``) has a fixed target to stay in lockstep with.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


def write_doc(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


def doc(mib=100.0, slot=26, bytes_10k=1000, bench="t"):
    return {
        "bench": bench,
        "slot_bytes": slot,
        "automaton_10k": {"sparse": {"bytes": bytes_10k}},
        "results": [{"mix": "benign", "matcher": "dense", "mib_per_s": mib}],
    }


class RowKeyTest(unittest.TestCase):
    def test_string_fields_sorted(self):
        row = {"mix": "scan/benign", "mib_per_s": 1.0, "matcher": "dense"}
        self.assertEqual(bench_compare.row_key(row), "matcher=dense mix=scan/benign")

    def test_no_string_fields_is_anonymous(self):
        self.assertEqual(bench_compare.row_key({"mib_per_s": 1.0}), "<anonymous row>")


class LoadTest(unittest.TestCase):
    def test_memory_rows_extracted(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_doc(d, "b.json", doc())
            bench, table = bench_compare.load(path)
        self.assertEqual(bench, "t")
        self.assertEqual(
            table["matcher=sparse section=automaton_10k"]["bytes"],
            (1000.0, bench_compare.MEMORY),
        )
        self.assertEqual(
            table["section=meta"]["slot_bytes"], (26.0, bench_compare.MEMORY)
        )
        self.assertEqual(
            table["matcher=dense mix=benign"]["mib_per_s"],
            (100.0, bench_compare.THROUGHPUT),
        )

    def test_files_without_memory_sections_still_load(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_doc(
                d, "b.json", {"results": [{"mode": "inline", "mib_per_s": 10}]}
            )
            bench, table = bench_compare.load(path)
        self.assertEqual(bench, "b.json")
        self.assertEqual(list(table), ["mode=inline"])

    def test_row_without_throughput_metric_exits(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_doc(d, "b.json", {"results": [{"mode": "inline"}]})
            with self.assertRaises(SystemExit):
                bench_compare.load(path)

    def test_missing_results_exits(self):
        with tempfile.TemporaryDirectory() as d:
            path = write_doc(d, "b.json", {"bench": "t"})
            with self.assertRaises(SystemExit):
                bench_compare.load(path)


class CompareTest(unittest.TestCase):
    def run_compare(self, base, cur, threshold=0.15, mem_threshold=0.15):
        with tempfile.TemporaryDirectory() as d:
            return bench_compare.compare(
                write_doc(d, "base.json", base),
                write_doc(d, "cur.json", cur),
                threshold,
                mem_threshold,
            )

    def test_within_tolerance_passes(self):
        lines, failures = self.run_compare(doc(100.0), doc(90.0, slot=27))
        self.assertEqual(failures, [])
        self.assertTrue(all(line[-1] == "ok" for line in lines))

    def test_throughput_drop_fails_with_formatted_message(self):
        _, failures = self.run_compare(doc(100.0), doc(80.0))
        self.assertEqual(
            failures,
            ["t: matcher=dense mix=benign mib_per_s -20.0% (>15% drop)"],
        )

    def test_memory_growth_fails_and_shrink_passes(self):
        _, failures = self.run_compare(
            doc(100.0, slot=26, bytes_10k=1000),
            doc(100.0, slot=31, bytes_10k=500),
        )
        self.assertEqual(
            failures, ["t: section=meta slot_bytes +19.2% (>15% growth)"]
        )

    def test_throughput_gain_and_memory_drop_never_fail(self):
        _, failures = self.run_compare(doc(100.0), doc(500.0, slot=1, bytes_10k=1))
        self.assertEqual(failures, [])

    def test_exact_threshold_edge_is_ok(self):
        # delta == ±threshold is not a failure: strict inequality.
        lines, failures = self.run_compare(
            doc(100.0, bytes_10k=1000), doc(85.0, bytes_10k=1150)
        )
        self.assertEqual(failures, [])
        deltas = {line[2]: line[5] for line in lines if line[5] != "-"}
        self.assertEqual(deltas["mib_per_s"], "-15.0%")
        self.assertEqual(deltas["bytes"], "+15.0%")

    def test_new_and_dropped_rows_report_without_failing(self):
        base = {"results": [{"mode": "inline", "mib_per_s": 10}]}
        cur = {"results": [{"mode": "pool-1", "mib_per_s": 10}]}
        lines, failures = self.run_compare(base, cur)
        self.assertEqual(failures, [])
        self.assertEqual([line[-1] for line in lines], ["row dropped", "new row"])

    def test_new_metric_reports_without_failing(self):
        base = {"results": [{"mode": "inline", "mib_per_s": 10}]}
        cur = {"results": [{"mode": "inline", "mib_per_s": 10, "gbps": 1}]}
        lines, failures = self.run_compare(base, cur)
        self.assertEqual(failures, [])
        self.assertIn("new metric", [line[-1] for line in lines])

    def test_zero_baseline_reads_as_no_delta(self):
        base = {"results": [{"mode": "inline", "mib_per_s": 0}]}
        cur = {"results": [{"mode": "inline", "mib_per_s": 5}]}
        _, failures = self.run_compare(base, cur)
        self.assertEqual(failures, [])


class MarkdownTest(unittest.TestCase):
    def test_header_names_both_tolerances(self):
        text = bench_compare.markdown([], 0.15, 0.10)
        self.assertIn(
            "### Bench regression gate "
            "(throughput fail below -15%, memory fail above +10%)",
            text,
        )
        self.assertIn("| bench | row | metric | baseline | current | delta | status |", text)

    def test_lines_render_as_table_rows(self):
        line = ("t", "mode=inline", "mib_per_s", "10.0", "8.0", "-20.0%", "REGRESSED")
        text = bench_compare.markdown([line], 0.15, 0.15)
        self.assertIn("| t | mode=inline | mib_per_s | 10.0 | 8.0 | -20.0% | REGRESSED |", text)


if __name__ == "__main__":
    unittest.main()
